//! Trace-derived analytics.
//!
//! Aggregates the tracer's span dump into two views the paper's
//! observability story calls for: which critical paths dominate (how often
//! each root-to-leaf latest-child chain occurs, and how slow it is), and
//! where time is actually spent per service (exclusive "self" time: a
//! span's duration minus the time covered by its children).

use meshlayer_mesh::{Span, TraceTree};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// One distinct critical path and its frequency.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CriticalPathStat {
    /// Service names from root to leaf along the path.
    pub path: Vec<String>,
    /// Traces whose critical path this is.
    pub count: u64,
    /// Mean end-to-end duration of those traces, milliseconds.
    pub mean_ms: f64,
    /// Maximum end-to-end duration, milliseconds.
    pub max_ms: f64,
}

/// Exclusive time attribution for one service.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceSelfTime {
    /// Service name.
    pub service: String,
    /// Spans attributed to the service.
    pub spans: u64,
    /// Total exclusive time across those spans, milliseconds.
    pub self_ms: f64,
    /// Total inclusive (span) time, milliseconds.
    pub total_ms: f64,
}

/// Aggregated trace analytics for a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TraceAnalytics {
    /// Traces analyzed.
    pub traces: u64,
    /// Critical paths, most frequent first.
    pub critical_paths: Vec<CriticalPathStat>,
    /// Per-service exclusive time, largest first.
    pub self_times: Vec<ServiceSelfTime>,
}

impl TraceAnalytics {
    /// Compute analytics from a span dump (as stored in run metrics).
    pub fn from_spans(spans: &[Span]) -> TraceAnalytics {
        let mut by_trace: HashMap<u64, Vec<Span>> = HashMap::new();
        for s in spans {
            by_trace.entry(s.trace.0).or_default().push(s.clone());
        }
        let mut trees: Vec<TraceTree> = by_trace
            .into_values()
            .map(|spans| TraceTree {
                trace: spans[0].trace,
                spans,
            })
            .collect();
        trees.sort_by_key(|t| t.trace);

        // Critical-path frequency.
        struct PathAgg {
            count: u64,
            sum_ms: f64,
            max_ms: f64,
        }
        let mut paths: BTreeMap<Vec<String>, PathAgg> = BTreeMap::new();
        let mut traces = 0u64;
        for tree in &trees {
            let Some(root) = tree.root() else { continue };
            traces += 1;
            let path: Vec<String> = tree.critical_path().iter().map(|s| s.to_string()).collect();
            let dur_ms = root.duration().as_millis_f64();
            let agg = paths.entry(path).or_insert(PathAgg {
                count: 0,
                sum_ms: 0.0,
                max_ms: 0.0,
            });
            agg.count += 1;
            agg.sum_ms += dur_ms;
            agg.max_ms = agg.max_ms.max(dur_ms);
        }
        let mut critical_paths: Vec<CriticalPathStat> = paths
            .into_iter()
            .map(|(path, a)| CriticalPathStat {
                path,
                count: a.count,
                mean_ms: a.sum_ms / a.count as f64,
                max_ms: a.max_ms,
            })
            .collect();
        critical_paths.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.path.cmp(&b.path)));

        // Per-service exclusive time. A span's self time is its duration
        // minus the union of its children's intervals (clipped to the
        // span), so overlapping fan-out children are not double-counted.
        let mut self_by_service: BTreeMap<String, ServiceSelfTime> = BTreeMap::new();
        for tree in &trees {
            for span in &tree.spans {
                let total_ms = span.duration().as_millis_f64();
                let mut intervals: Vec<(u64, u64)> = tree
                    .children(span.id)
                    .iter()
                    .map(|c| {
                        (
                            c.start
                                .as_nanos()
                                .clamp(span.start.as_nanos(), span.end.as_nanos()),
                            c.end
                                .as_nanos()
                                .clamp(span.start.as_nanos(), span.end.as_nanos()),
                        )
                    })
                    .collect();
                intervals.sort_unstable();
                let mut covered = 0u64;
                let mut cursor = span.start.as_nanos();
                for (lo, hi) in intervals {
                    let lo = lo.max(cursor);
                    if hi > lo {
                        covered += hi - lo;
                        cursor = hi;
                    }
                }
                let self_ns = span.duration().as_nanos().saturating_sub(covered);
                let e = self_by_service
                    .entry(span.service.clone())
                    .or_insert_with(|| ServiceSelfTime {
                        service: span.service.clone(),
                        spans: 0,
                        self_ms: 0.0,
                        total_ms: 0.0,
                    });
                e.spans += 1;
                e.self_ms += self_ns as f64 / 1e6;
                e.total_ms += total_ms;
            }
        }
        let mut self_times: Vec<ServiceSelfTime> = self_by_service.into_values().collect();
        self_times.sort_by(|a, b| {
            b.self_ms
                .partial_cmp(&a.self_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.service.cmp(&b.service))
        });

        TraceAnalytics {
            traces,
            critical_paths,
            self_times,
        }
    }

    /// Self-time entry for one service.
    pub fn self_time(&self, service: &str) -> Option<&ServiceSelfTime> {
        self.self_times.iter().find(|s| s.service == service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshlayer_mesh::{SpanId, SpanKind, TraceId};
    use meshlayer_simcore::SimTime;

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        service: &str,
        start_ms: u64,
        end_ms: u64,
    ) -> Span {
        Span {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: parent.map(SpanId),
            service: service.into(),
            kind: SpanKind::Server,
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
            tags: Vec::new(),
        }
    }

    fn demo_spans() -> Vec<Span> {
        vec![
            // Trace 1: frontend -> (details, reviews -> ratings)
            span(1, 1, None, "frontend", 0, 100),
            span(1, 2, Some(1), "details", 10, 30),
            span(1, 3, Some(1), "reviews", 10, 90),
            span(1, 4, Some(3), "ratings", 20, 80),
            // Trace 2: frontend -> details only
            span(2, 5, None, "frontend", 0, 40),
            span(2, 6, Some(5), "details", 5, 35),
        ]
    }

    #[test]
    fn critical_paths_aggregated() {
        let a = TraceAnalytics::from_spans(&demo_spans());
        assert_eq!(a.traces, 2);
        assert_eq!(a.critical_paths.len(), 2);
        // Both paths occur once; tie broken by path name.
        let paths: Vec<Vec<String>> = a.critical_paths.iter().map(|p| p.path.clone()).collect();
        assert!(paths.contains(&vec![
            "frontend".to_string(),
            "reviews".to_string(),
            "ratings".to_string()
        ]));
        assert!(paths.contains(&vec!["frontend".to_string(), "details".to_string()]));
    }

    #[test]
    fn self_time_excludes_children() {
        let a = TraceAnalytics::from_spans(&demo_spans());
        // Trace 1 frontend: 100 total, children cover [10,30] and [10,90]
        // (union 80) -> 20 self. Trace 2 frontend: 40 total, child covers
        // 30 -> 10 self. Total 30 ms.
        let fe = a.self_time("frontend").unwrap();
        assert_eq!(fe.spans, 2);
        assert!((fe.self_ms - 30.0).abs() < 1e-6, "self {}", fe.self_ms);
        assert!((fe.total_ms - 140.0).abs() < 1e-6);
        // ratings has no children: self == total == 60.
        let r = a.self_time("ratings").unwrap();
        assert!((r.self_ms - 60.0).abs() < 1e-6);
    }

    #[test]
    fn empty_input_is_empty() {
        let a = TraceAnalytics::from_spans(&[]);
        assert_eq!(a.traces, 0);
        assert!(a.critical_paths.is_empty());
        assert!(a.self_times.is_empty());
    }
}
