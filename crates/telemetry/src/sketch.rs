//! Deterministic mergeable quantile sketches.
//!
//! A [`QuantileSketch`] is the DDSketch idea — relative-error-bounded
//! quantiles from logarithmically spaced buckets — built on the same
//! integer log-linear bucketing as the simcore histogram instead of
//! floating-point logarithms, so every operation is exact integer
//! arithmetic: recording, merging, and roll-up are bit-deterministic on
//! any host and in any order. Merging is element-wise count addition,
//! which makes it exactly associative and commutative — the property the
//! telemetry plane's age-based roll-up and pod → service → zone → mesh
//! aggregation both lean on (property-tested in the telemetry crate).
//!
//! The bucket array is stored in canonical trimmed form (first and last
//! stored bucket are non-empty), so two sketches holding the same
//! distribution are byte-identical however they were assembled, and an
//! idle sketch costs a few dozen bytes. Counts are `u32` per bucket
//! (saturating): one telemetry interval never holds more than ~4 × 10⁹
//! samples, and halving the footprint matters more at fleet scale.

use meshlayer_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Default sub-bucket exponent: 2⁶ = 64 linear sub-buckets per
/// power-of-two band, a relative error bound of 1/64 ≈ 1.6 % — inside
/// every accuracy margin the experiment suite asserts, at a quarter of
/// the full histogram's footprint.
pub const DEFAULT_SUB_BITS: u32 = 6;

/// A mergeable log-linear quantile sketch over `u64` values (nanoseconds
/// throughout the telemetry plane).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Sub-bucket exponent: `1 << sub_bits` linear buckets per band.
    sub_bits: u32,
    /// Bucket index of `counts[0]` (canonical: `counts` is trimmed).
    base: u32,
    counts: Vec<u32>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(DEFAULT_SUB_BITS)
    }
}

impl QuantileSketch {
    /// An empty sketch with `1 << sub_bits` sub-buckets per band; the
    /// relative error of any quantile is bounded by [`Self::relative_error`].
    pub fn new(sub_bits: u32) -> QuantileSketch {
        assert!(
            (1..=16).contains(&sub_bits),
            "sub_bits {sub_bits} out of range 1..=16"
        );
        QuantileSketch {
            sub_bits,
            base: 0,
            counts: Vec::new(),
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// The configured sub-bucket exponent.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// Guaranteed relative error bound for any quantile: `2^-sub_bits`.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.sub_bits) as f64
    }

    /// Index of the bucket holding `v` (same scheme as the simcore
    /// histogram, parameterized on `sub_bits`).
    fn index(&self, v: u64) -> u32 {
        let sub = 1u64 << self.sub_bits;
        if v < sub {
            return v as u32;
        }
        let msb = 63 - v.leading_zeros();
        let band = msb - self.sub_bits;
        let shift = band + 1;
        let within = ((v >> shift) & (sub / 2 - 1)) as u32;
        sub as u32 + band * (sub / 2) as u32 + within
    }

    /// Lowest value mapping to bucket `i` (inverse of [`Self::index`]).
    fn bucket_low(&self, i: u32) -> u64 {
        let sub = 1u64 << self.sub_bits;
        if (i as u64) < sub {
            return i as u64;
        }
        let rel = i as u64 - sub;
        let half = sub / 2;
        let band = (rel / half) as u32;
        let within = rel % half;
        let base = sub << band;
        let width = 1u64 << (band + 1);
        base + within * width
    }

    /// Midpoint of bucket `i` (the reported representative value).
    fn bucket_mid(&self, i: u32) -> u64 {
        let lo = self.bucket_low(i);
        let hi = self.bucket_low(i + 1);
        lo + hi.saturating_sub(lo) / 2
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let idx = self.index(v);
        if self.counts.is_empty() {
            self.base = idx;
            self.counts.push(0);
        } else if idx < self.base {
            let grow = (self.base - idx) as usize;
            let mut counts = vec![0u32; grow + self.counts.len()];
            counts[grow..].copy_from_slice(&self.counts);
            self.counts = counts;
            self.base = idx;
        } else if idx - self.base >= self.counts.len() as u32 {
            self.counts.resize((idx - self.base + 1) as usize, 0);
        }
        let slot = &mut self.counts[(idx - self.base) as usize];
        *slot = slot.saturating_add(1);
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0,1]`, within the relative error bound
    /// of the recorded exact-rank value. Returns 0 if empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c as u64;
            if seen >= target {
                return self
                    .bucket_mid(self.base + i as u32)
                    .clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another sketch into this one: element-wise count addition,
    /// exactly associative and commutative. Panics if the sub-bucket
    /// schemes differ (merging across resolutions is not meaningful).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot merge sketches with different resolutions"
        );
        if other.total == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.base = other.base;
            self.counts = other.counts.clone();
        } else {
            let lo = self.base.min(other.base);
            let hi =
                (self.base + self.counts.len() as u32).max(other.base + other.counts.len() as u32);
            let mut counts = vec![0u32; (hi - lo) as usize];
            for (i, &c) in self.counts.iter().enumerate() {
                counts[(self.base - lo) as usize + i] = c;
            }
            for (i, &c) in other.counts.iter().enumerate() {
                let slot = &mut counts[(other.base - lo) as usize + i];
                *slot = slot.saturating_add(c);
            }
            self.base = lo;
            self.counts = counts;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimated heap + inline footprint in bytes.
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.capacity() * std::mem::size_of::<u32>()
    }
}

/// One closed telemetry interval backed by a sketch: the unit the
/// age-based roll-up merges. Fine intervals have `len` equal to the
/// scrape interval; rolled-up intervals cover `rollup_factor` (or more)
/// of them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntervalSketch {
    /// Interval start (simulated time).
    pub start: SimTime,
    /// Interval length (a multiple of the base scrape interval).
    pub len: SimDuration,
    /// Failures observed in the interval.
    pub errors: u64,
    /// Latency samples.
    pub sketch: QuantileSketch,
}

impl IntervalSketch {
    /// An empty interval `[start, start + len)`.
    pub fn new(start: SimTime, len: SimDuration, sub_bits: u32) -> IntervalSketch {
        IntervalSketch {
            start,
            len,
            errors: 0,
            sketch: QuantileSketch::new(sub_bits),
        }
    }

    /// Absorb a (chronologically later, adjacent) interval: the spans
    /// concatenate and the sketches merge.
    pub fn absorb(&mut self, next: &IntervalSketch) {
        self.len += next.len;
        self.errors += next.errors;
        self.sketch.merge(&next.sketch);
    }

    /// Estimated footprint in bytes.
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<QuantileSketch>()
            + self.sketch.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_quantiles() {
        let mut s = QuantileSketch::new(6);
        for v in 1..=10_000u64 {
            s.record(v);
        }
        assert_eq!(s.count(), 10_000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 10_000);
        for (q, expect) in [(0.5, 5_000.0), (0.99, 9_900.0)] {
            let got = s.value_at_quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel <= s.relative_error(), "q={q}: {got} vs {expect}");
        }
    }

    #[test]
    fn canonical_form_is_trimmed() {
        let mut s = QuantileSketch::new(6);
        s.record(1_000_000);
        s.record(2_000_000);
        assert!(*s.counts.first().unwrap() > 0);
        assert!(*s.counts.last().unwrap() > 0);
        // Recording a smaller value extends the front.
        s.record(1_000);
        assert!(*s.counts.first().unwrap() > 0);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn merge_matches_combined_recording_exactly() {
        let mut a = QuantileSketch::new(6);
        let mut b = QuantileSketch::new(6);
        let mut both = QuantileSketch::new(6);
        for v in 0..2_000u64 {
            let x = v * 7919 + 13;
            if v % 3 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            both.record(x);
        }
        a.merge(&b);
        assert_eq!(a, both, "merge must equal direct recording byte-for-byte");
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a = QuantileSketch::new(6);
        a.record(42);
        let before = a.clone();
        a.merge(&QuantileSketch::new(6));
        assert_eq!(a, before);
        let mut e = QuantileSketch::new(6);
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn empty_sketch_is_zeroes() {
        let s = QuantileSketch::new(6);
        assert!(s.is_empty());
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.value_at_quantile(0.99), 0);
    }

    #[test]
    fn interval_absorb_concatenates() {
        let mut a = IntervalSketch::new(SimTime::ZERO, SimDuration::from_millis(100), 6);
        a.sketch.record(1_000);
        a.errors = 1;
        let mut b =
            IntervalSketch::new(SimTime::from_millis(100), SimDuration::from_millis(100), 6);
        b.sketch.record(3_000);
        a.absorb(&b);
        assert_eq!(a.len, SimDuration::from_millis(200));
        assert_eq!(a.errors, 1);
        assert_eq!(a.sketch.count(), 2);
    }

    #[test]
    fn mem_bytes_tracks_buckets() {
        let mut s = QuantileSketch::new(6);
        let empty = s.mem_bytes();
        for v in 0..100u64 {
            s.record(v * 1_000_003);
        }
        assert!(s.mem_bytes() > empty);
    }
}
