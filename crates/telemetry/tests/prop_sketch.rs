//! Property tests for the telemetry plane's quantile sketches: the
//! algebraic guarantees the roll-up pyramid and the pod → service →
//! zone → mesh aggregation both depend on.
//!
//! * merge is exactly **associative** and **commutative** — not just
//!   "approximately the same distribution" but byte-for-byte equal
//!   sketches, so roll-up order can never affect an exported artifact;
//! * any quantile is within the documented relative error bound of the
//!   exact sorted-sample quantile (same ceil-rank rule);
//! * absorbing N fine intervals produces the same coarse interval,
//!   byte for byte, as recording every sample into one coarse interval
//!   directly — the invariant that makes age-based roll-up lossless at
//!   interval granularity.

use meshlayer_simcore::{SimDuration, SimTime};
use meshlayer_telemetry::{IntervalSketch, LatencySeries, QuantileSketch, RetentionPolicy};
use proptest::prelude::*;

/// Deterministic xorshift stream seeded per case.
fn samples(n: usize, lo: u64, span_exp: u32, seed: u64) -> Vec<u64> {
    let span = 1u64 << span_exp;
    let mut x = seed.wrapping_mul(2_685_821_657_736_338_717).max(1);
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            lo + x % span
        })
        .collect()
}

fn sketch_of(vals: &[u64], sub_bits: u32) -> QuantileSketch {
    let mut s = QuantileSketch::new(sub_bits);
    for &v in vals {
        s.record(v);
    }
    s
}

/// Exact quantile with the same ceil-rank rule the sketch uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merge algebra: for any 3-way split of any sample set,
    /// `(a ∪ b) ∪ c == a ∪ (b ∪ c)` and `a ∪ b == b ∪ a`, byte for
    /// byte, and both equal recording the whole set into one sketch.
    #[test]
    fn merge_is_associative_and_commutative(
        n in 0usize..300,
        lo in 0u64..50_000,
        span_exp in 0u32..30,
        seed in 0u64..10_000,
        sub_bits in 2u32..9,
        split in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let vals = samples(n, lo, span_exp, seed);
        let cut1 = (vals.len() as f64 * split.0.min(split.1)) as usize;
        let cut2 = (vals.len() as f64 * split.0.max(split.1)) as usize;
        let a = sketch_of(&vals[..cut1], sub_bits);
        let b = sketch_of(&vals[cut1..cut2], sub_bits);
        let c = sketch_of(&vals[cut2..], sub_bits);

        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must be associative");

        // a ∪ b == b ∪ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        // Either grouping equals direct recording of the full set.
        let whole = sketch_of(&vals, sub_bits);
        prop_assert_eq!(&left, &whole, "merge must equal direct recording");
    }

    /// Accuracy contract: any quantile of any sample set is within
    /// `relative_error()` of the exact sorted-sample quantile.
    #[test]
    fn quantiles_within_relative_error_of_exact(
        n in 1usize..400,
        lo in 0u64..100_000,
        span_exp in 0u32..30,
        seed in 0u64..10_000,
        sub_bits in 2u32..9,
    ) {
        let vals = samples(n, lo, span_exp, seed);
        let s = sketch_of(&vals, sub_bits);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let got = s.value_at_quantile(q);
            let err = (got as f64 - exact as f64).abs() / (exact as f64).max(1.0);
            prop_assert!(
                err <= s.relative_error() + 1e-12,
                "q={q}: sketch {got} vs exact {exact} (rel err {err:.5} > {:.5}, sub_bits {sub_bits})",
                s.relative_error()
            );
        }
        // min/max/count/mean are exact, not approximated.
        prop_assert_eq!(s.min(), sorted[0]);
        prop_assert_eq!(s.max(), *sorted.last().unwrap());
        prop_assert_eq!(s.count(), sorted.len() as u64);
    }

    /// Roll-up losslessness: absorbing N adjacent fine intervals yields
    /// the same coarse interval, byte for byte, as recording every
    /// sample (and error) into a single interval spanning all of them.
    #[test]
    fn rollup_of_fine_intervals_equals_one_coarse_interval(
        n_intervals in 1usize..12,
        per in 0usize..40,
        lo in 0u64..50_000,
        span_exp in 0u32..28,
        seed in 0u64..10_000,
    ) {
        let step = SimDuration::from_millis(100);
        let mut fine = Vec::new();
        let mut coarse = IntervalSketch::new(
            SimTime::ZERO,
            SimDuration::from_nanos(step.as_nanos() * n_intervals as u64),
            6,
        );
        for i in 0..n_intervals {
            let vals = samples(per, lo, span_exp, seed.wrapping_add(i as u64));
            let mut iv = IntervalSketch::new(
                SimTime::from_nanos(step.as_nanos() * i as u64),
                step,
                6,
            );
            iv.errors = (seed.wrapping_add(i as u64)) % 3;
            for &v in &vals {
                iv.sketch.record(v);
                coarse.sketch.record(v);
            }
            coarse.errors += iv.errors;
            fine.push(iv);
        }
        let mut rolled = fine[0].clone();
        for iv in &fine[1..] {
            rolled.absorb(iv);
        }
        prop_assert_eq!(&rolled, &coarse, "roll-up must be lossless byte-for-byte");
    }

    /// The retention pyramid bounds memory for any workload shape:
    /// after any number of closed intervals, the series never holds
    /// more than `fine_cap + coarse_cap` sketches.
    #[test]
    fn retention_bounds_interval_count(
        intervals in 1u64..400,
        per in 1u64..20,
        seed in 0u64..1_000,
    ) {
        let step = SimDuration::from_millis(100);
        let pol = RetentionPolicy::default();
        let mut series = LatencySeries::with_retention(step, pol.clone());
        for i in 0..intervals {
            let t = SimTime::from_nanos(step.as_nanos() * i + 1);
            for k in 0..per {
                let v = (seed + 1) * 31 + i * 7 + k * 13;
                series.record(t, SimDuration::from_nanos(v));
            }
        }
        series.finish(SimTime::from_nanos(step.as_nanos() * intervals + 1));
        let held = series.intervals().count();
        prop_assert!(
            held <= (pol.fine_cap + pol.coarse_cap) + 1,
            "{held} intervals retained exceeds pyramid cap"
        );
        // Nothing is dropped: total sample count survives roll-up.
        let total: u64 = series.intervals().map(|iv| iv.sketch.count()).sum();
        prop_assert_eq!(total, intervals * per);
    }
}
