//! Property-based tests for the simulation core.

use meshlayer_simcore::{Dist, EventQueue, Histogram, SimRng, SimTime, Welford};
use proptest::prelude::*;

proptest! {
    /// The event queue is a total order: popping always yields
    /// non-decreasing times, regardless of push pattern.
    #[test]
    fn event_queue_pops_monotonically(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    /// Same-time events preserve push order (the determinism guarantee).
    #[test]
    fn event_queue_fifo_within_instant(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_millis(5), i);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }

    /// Histogram quantiles are within the documented 1% relative error and
    /// never exceed the observed extremes.
    #[test]
    fn histogram_quantile_bounds(values in prop::collection::vec(1u64..10_000_000_000, 1..500)) {
        let mut h = Histogram::new();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let got = h.value_at_quantile(q);
            prop_assert!(got >= h.min());
            prop_assert!(got <= h.max());
            // Compare against the exact nearest-rank value.
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = sorted[rank - 1];
            let rel = (got as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(rel < 0.01, "q={} got={} exact={} rel={}", q, got, exact, rel);
        }
    }

    /// Merging histograms equals recording the union.
    #[test]
    fn histogram_merge_is_union(
        xs in prop::collection::vec(1u64..1_000_000, 0..200),
        ys in prop::collection::vec(1u64..1_000_000, 0..200),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut u = Histogram::new();
        for &x in &xs { a.record(x); u.record(x); }
        for &y in &ys { b.record(y); u.record(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), u.count());
        prop_assert_eq!(a.value_at_quantile(0.5), u.value_at_quantile(0.5));
        prop_assert_eq!(a.value_at_quantile(0.99), u.value_at_quantile(0.99));
    }

    /// All distributions produce non-negative, finite samples.
    #[test]
    fn distributions_are_nonnegative_finite(seed in 0u64..1_000_000, mean in 0.001f64..100.0, shape in 0.05f64..2.0) {
        let mut rng = SimRng::new(seed);
        for d in [
            Dist::constant(mean),
            Dist::uniform(0.0, mean * 2.0),
            Dist::exp(mean),
            Dist::lognormal(mean, shape),
            Dist::Normal { mean, std_dev: mean * shape },
            Dist::Pareto { scale: mean, shape: 1.0 + shape },
            Dist::Bimodal { value_a: mean, p_a: 0.9, value_b: mean * 100.0 },
        ] {
            for _ in 0..20 {
                let v = d.sample(&mut rng);
                prop_assert!(v.is_finite() && v >= 0.0, "{:?} -> {}", d, v);
            }
        }
    }

    /// Welford matches the naive two-pass computation.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..300)) {
        let mut w = Welford::new();
        for &x in &xs { w.push(x); }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    /// Split RNG streams are stable: the same label always gives the same
    /// stream, and different labels differ.
    #[test]
    fn rng_split_stability(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = SimRng::new(seed);
        let mut a = root.split(&label);
        let mut b = root.split(&label);
        prop_assert_eq!(a.u64(), b.u64());
        let mut c = root.split(&format!("{label}x"));
        let mut a2 = root.split(&label);
        // Not a hard guarantee bitwise, but collisions should be absent in
        // practice for these tiny label sets.
        prop_assert_ne!(a2.u64(), c.u64());
    }
}
