//! Deterministic event queue.
//!
//! The queue is a hierarchical calendar (timing-wheel) keyed on
//! `(SimTime, sequence)` where the sequence number is assigned at push
//! time. Two events scheduled for the same instant therefore fire in push
//! order, which makes simulation runs bit-for-bit reproducible regardless
//! of queue internals.
//!
//! # Structure
//!
//! Near-future events land in a wheel of [`SLOTS`] buckets, each
//! [`BUCKET_NS`] nanoseconds wide (horizon ≈ 67 ms of simulated time) —
//! push is O(1). Events beyond the horizon go to a small overflow binary
//! heap and migrate into the wheel as the cursor advances past their
//! bucket. Popping drains one bucket at a time through a `due` buffer
//! sorted by `(at, seq)`, so the global pop order is *identical* to a
//! total sort — the determinism contract the flight recorder
//! (`FLTREC01` captures) and every seeded test depend on. See DESIGN.md
//! §"Calendar queue".

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Name of the active event-queue implementation, recorded in
/// `BENCH_engine.json` so perf numbers are attributable to the engine
/// that produced them.
pub const EVENT_QUEUE_IMPL: &str = "calendar-queue";

/// log2 of the wheel slot count.
const SLOT_BITS: usize = 12;
/// Number of wheel slots.
const SLOTS: usize = 1 << SLOT_BITS;
/// log2 of a bucket's width in nanoseconds (2^14 ns ≈ 16.4 µs).
const BUCKET_BITS: u32 = 14;
/// Bucket width in nanoseconds.
#[cfg(test)]
const BUCKET_NS: u64 = 1 << BUCKET_BITS;
/// Words in the slot-occupancy bitmap.
const WORDS: usize = SLOTS / 64;

/// A pending event: fire time, tie-break sequence, payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Absolute bucket index of an instant.
#[inline]
fn bucket(at: SimTime) -> u64 {
    at.as_nanos() >> BUCKET_BITS
}

/// A deterministic future-event list.
///
/// Generic over the event payload `E`; the simulation driver defines its own
/// event enum and dispatches popped events itself. Pushing an event earlier
/// than the last popped time is a logic error and panics in debug builds
/// (time cannot flow backwards).
///
/// # Invariants
///
/// With `cursor` the absolute index of the bucket currently draining:
/// - `due` holds every pending event whose bucket is ≤ `cursor`, sorted
///   descending by `(at, seq)` (pop takes from the end);
/// - `slots[b & (SLOTS-1)]` holds events with `cursor < b < cursor + SLOTS`
///   (unsorted; sorted once when the bucket is reached);
/// - `overflow` holds events with bucket ≥ `cursor + SLOTS`.
pub struct EventQueue<E> {
    /// Current bucket's events, sorted descending by `(at, seq)`.
    due: Vec<(SimTime, u64, E)>,
    /// The wheel: one unsorted vec per slot.
    slots: Vec<Vec<(SimTime, u64, E)>>,
    /// One bit per slot: does it hold any events?
    occupancy: [u64; WORDS],
    /// Far-future events, beyond the wheel horizon.
    overflow: BinaryHeap<Entry<E>>,
    /// Absolute index of the bucket `due` is draining.
    cursor: u64,
    /// Pending events across `due` + wheel + overflow.
    pending: usize,
    seq: u64,
    now: SimTime,
    pushed: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            due: Vec::new(),
            slots: std::iter::repeat_with(Vec::new).take(SLOTS).collect(),
            occupancy: [0; WORDS],
            overflow: BinaryHeap::new(),
            cursor: 0,
            pending: 0,
            seq: 0,
            now: SimTime::ZERO,
            pushed: 0,
            popped: 0,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at `at`.
    ///
    /// `at` may equal `now()` (the event fires in the current instant, after
    /// events already queued for that instant) but must not precede it.
    pub fn push(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {:?} < {:?}",
            at,
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        self.pending += 1;
        let b = bucket(at);
        if b <= self.cursor {
            Self::insert_due(&mut self.due, at, seq, payload);
        } else if b < self.cursor + SLOTS as u64 {
            let s = (b as usize) & (SLOTS - 1);
            self.slots[s].push((at, seq, payload));
            self.occupancy[s >> 6] |= 1 << (s & 63);
        } else {
            self.overflow.push(Entry { at, seq, payload });
        }
    }

    /// Binary-insert into the descending-sorted `due` buffer.
    fn insert_due(due: &mut Vec<(SimTime, u64, E)>, at: SimTime, seq: u64, payload: E) {
        let idx = due.partition_point(|e| (e.0, e.1) > (at, seq));
        due.insert(idx, (at, seq, payload));
    }

    /// Pop the earliest event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if let Some((at, _, payload)) = self.due.pop() {
                self.now = at;
                self.popped += 1;
                self.pending -= 1;
                return Some((at, payload));
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Move the cursor to the next non-empty bucket, filling `due`.
    /// Returns false when no events remain anywhere.
    fn advance(&mut self) -> bool {
        let cs = (self.cursor as usize) & (SLOTS - 1);
        if let Some(d) = self.next_occupied_distance(cs) {
            self.cursor += d as u64;
            let s = (self.cursor as usize) & (SLOTS - 1);
            // `due` is empty here; swapping recycles its allocation as the
            // slot's next scratch buffer.
            std::mem::swap(&mut self.slots[s], &mut self.due);
            self.occupancy[s >> 6] &= !(1 << (s & 63));
            self.due
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
            self.migrate_overflow();
            true
        } else if let Some(top) = self.overflow.peek() {
            // Wheel is drained: jump straight to the first overflow bucket.
            self.cursor = bucket(top.at);
            self.migrate_overflow();
            true
        } else {
            false
        }
    }

    /// Pull every overflow event whose bucket now fits the wheel horizon
    /// into its slot (or `due`, when its bucket is the cursor's).
    fn migrate_overflow(&mut self) {
        while let Some(top) = self.overflow.peek() {
            let b = bucket(top.at);
            if b >= self.cursor + SLOTS as u64 {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            if b <= self.cursor {
                Self::insert_due(&mut self.due, e.at, e.seq, e.payload);
            } else {
                let s = (b as usize) & (SLOTS - 1);
                self.slots[s].push((e.at, e.seq, e.payload));
                self.occupancy[s >> 6] |= 1 << (s & 63);
            }
        }
    }

    /// Distance (in buckets, 1..SLOTS) from the cursor's slot `cs` to the
    /// next occupied slot, scanning the bitmap with wrap-around.
    fn next_occupied_distance(&self, cs: usize) -> Option<usize> {
        let start = (cs + 1) & (SLOTS - 1);
        let mut w = start >> 6;
        let mut mask = !0u64 << (start & 63);
        for _ in 0..=WORDS {
            let bits = self.occupancy[w] & mask;
            if bits != 0 {
                let s = (w << 6) + bits.trailing_zeros() as usize;
                let d = (s + SLOTS - cs) & (SLOTS - 1);
                debug_assert!(d != 0, "cursor slot cannot be occupied");
                return Some(d);
            }
            w = (w + 1) % WORDS;
            mask = !0;
        }
        None
    }

    /// Fire time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.due.last() {
            return Some(e.0);
        }
        let cs = (self.cursor as usize) & (SLOTS - 1);
        if let Some(d) = self.next_occupied_distance(cs) {
            let s = ((self.cursor + d as u64) as usize) & (SLOTS - 1);
            return self.slots[s].iter().map(|e| e.0).min();
        }
        self.overflow.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total events pushed over the queue's lifetime (for run statistics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime (for run statistics).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drop every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.due.clear();
        for s in &mut self.slots {
            s.clear();
        }
        self.occupancy = [0; WORDS];
        self.overflow.clear();
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), 5);
        q.push(SimTime::from_millis(1), 1);
        q.push(SimTime::from_millis(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_in_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    fn push_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "a");
        q.pop();
        q.push(q.now(), "b");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        assert_eq!(e, "b");
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn push_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        q.pop();
        q.push(SimTime::from_secs(1), ());
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_secs(1));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1) + SimDuration::from_millis(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1001)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 10u32);
        q.push(SimTime::from_millis(30), 30);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_millis(), e), (10, 10));
        // Schedule between now and the remaining event.
        q.push(SimTime::from_millis(20), 20);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }

    #[test]
    fn far_future_events_cross_the_wheel_horizon() {
        // Events far beyond the wheel horizon start in overflow and must
        // migrate into the wheel (and fire in exact order) as time advances.
        let mut q = EventQueue::new();
        let horizon = BUCKET_NS * SLOTS as u64;
        let times = [
            1,
            horizon - 1,
            horizon,
            horizon + 1,
            3 * horizon + 17,
            10 * horizon,
            10 * horizon, // same instant: FIFO by push order
        ];
        for (i, &ns) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(ns), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn overflow_jump_then_push_at_now() {
        // After the wheel drains, the cursor jumps straight to the first
        // overflow bucket; pushes at the (jumped-to) current instant must
        // still honor FIFO order against migrated events.
        let mut q = EventQueue::new();
        let far = SimTime::from_secs(100);
        q.push(far, "far");
        q.push(SimTime::from_nanos(5), "near");
        assert_eq!(q.pop().unwrap().1, "near"); // cursor now at bucket(5ns)
        q.push(far, "far2"); // overflow again
        assert_eq!(q.pop().unwrap().1, "far"); // overflow jump: cursor at bucket(100s)
        q.push(q.now(), "now"); // same instant, pushed after far2
        assert_eq!(q.pop().unwrap().1, "far2");
        assert_eq!(q.pop().unwrap().1, "now");
        assert!(q.pop().is_none());
    }

    /// Cross-validation: a pseudorandom push/pop workload spanning bucket
    /// boundaries, wheel wraps, and the overflow horizon must pop in
    /// exactly the order a total `(at, seq)` sort would produce.
    #[test]
    fn matches_total_order_reference() {
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u64, u32)> = Vec::new(); // (at_ns, seq, id)
        let mut seq = 0u64;
        let mut now = 0u64;
        // xorshift64 for a deterministic but irregular schedule.
        let mut rng = 0x9E3779B97F4A7C15u64;
        let mut step = |m: u64| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng % m
        };
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        #[allow(clippy::explicit_counter_loop)] // seq mirrors the queue's push counter
        for round in 0..5000u32 {
            // Mix of near (same bucket), mid (within wheel), far (overflow).
            let delta = match step(10) {
                0..=5 => step(BUCKET_NS * 4),
                6..=8 => step(BUCKET_NS * SLOTS as u64),
                _ => BUCKET_NS * SLOTS as u64 + step(1 << 34),
            };
            let at = now + delta;
            q.push(SimTime::from_nanos(at), round);
            model.push((at, seq, round));
            seq += 1;
            // Pop roughly as often as we push, plus bursts.
            for _ in 0..=step(2) {
                if let Some((t, id)) = q.pop() {
                    now = t.as_nanos();
                    popped.push(id);
                    let min = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| (e.0, e.1))
                        .map(|(i, _)| i)
                        .unwrap();
                    expected.push(model.swap_remove(min).2);
                }
            }
        }
        while let Some((_, id)) = q.pop() {
            popped.push(id);
            let min = model
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.0, e.1))
                .map(|(i, _)| i)
                .unwrap();
            expected.push(model.swap_remove(min).2);
        }
        assert!(model.is_empty());
        assert_eq!(popped, expected);
        assert_eq!(q.total_pushed(), q.total_popped());
    }

    #[test]
    fn peek_time_sees_wheel_and_overflow() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        // Only overflow populated.
        q.push(SimTime::from_secs(50), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(50)));
        // Wheel beats overflow.
        q.push(SimTime::from_millis(2), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        // Due (current bucket) beats wheel.
        q.push(SimTime::ZERO, 3);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
