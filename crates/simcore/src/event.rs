//! Deterministic event queue.
//!
//! The queue is a binary heap keyed on `(SimTime, sequence)` where the
//! sequence number is assigned at push time. Two events scheduled for the
//! same instant therefore fire in push order, which makes simulation runs
//! bit-for-bit reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event: fire time, tie-break sequence, payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Generic over the event payload `E`; the simulation driver defines its own
/// event enum and dispatches popped events itself. Pushing an event earlier
/// than the last popped time is a logic error and panics in debug builds
/// (time cannot flow backwards).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    pushed: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            pushed: 0,
            popped: 0,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at `at`.
    ///
    /// `at` may equal `now()` (the event fires in the current instant, after
    /// events already queued for that instant) but must not precede it.
    pub fn push(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {:?} < {:?}",
            at,
            self.now
        );
        let at = at.max(self.now);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        self.pushed += 1;
    }

    /// Pop the earliest event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.payload))
    }

    /// Fire time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events pushed over the queue's lifetime (for run statistics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime (for run statistics).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drop every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), 5);
        q.push(SimTime::from_millis(1), 1);
        q.push(SimTime::from_millis(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_in_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    fn push_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "a");
        q.pop();
        q.push(q.now(), "b");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        assert_eq!(e, "b");
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn push_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        q.pop();
        q.push(SimTime::from_secs(1), ());
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_secs(1));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1) + SimDuration::from_millis(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1001)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 10u32);
        q.push(SimTime::from_millis(30), 30);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_millis(), e), (10, 10));
        // Schedule between now and the remaining event.
        q.push(SimTime::from_millis(20), 20);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }
}
