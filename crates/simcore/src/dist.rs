//! Sampling distributions for workload and service-time modelling.
//!
//! The paper's workload generator (`wrk2`) uses *uniformly random
//! inter-arrival times*; service times in microservice fleets are commonly
//! modelled as exponential, log-normal (heavy-ish tail) or Pareto (heavy
//! tail). All of these are provided here, implemented from first principles
//! on top of [`SimRng`] so the only external dependency is `rand`'s uniform
//! source.

use crate::rng::SimRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A sampling distribution over non-negative real values.
///
/// `Dist` is a plain enum rather than a trait object so experiment specs can
/// be serialized, diffed, and embedded in results files.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always `value`.
    Constant {
        /// The value returned by every sample.
        value: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean (`1/λ`).
    Exp {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Log-normal parameterised by the *target* mean and the σ of the
    /// underlying normal (shape). Heavier tail as `sigma` grows.
    LogNormal {
        /// Desired mean of the sampled values.
        mean: f64,
        /// Standard deviation of the underlying normal distribution.
        sigma: f64,
    },
    /// Normal clamped at zero.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Pareto (type I) with minimum `scale` and tail index `shape`
    /// (heavier tail for smaller `shape`; mean is infinite for `shape <= 1`).
    Pareto {
        /// Minimum value (x_m).
        scale: f64,
        /// Tail index (α).
        shape: f64,
    },
    /// Bimodal: `value_a` with probability `p_a`, else `value_b`.
    /// Useful for "mostly fast, occasionally slow" service times.
    Bimodal {
        /// First mode.
        value_a: f64,
        /// Probability of the first mode.
        p_a: f64,
        /// Second mode.
        value_b: f64,
    },
    /// Empirical distribution: samples uniformly from the given values.
    Empirical {
        /// The sample pool (must be non-empty to sample from).
        values: Vec<f64>,
    },
    /// Zipf over `{1..n}` with exponent `s` (popularity skew; used for
    /// session-affinity keys and cache-hit modelling). Samples are ranks.
    Zipf {
        /// Number of ranks.
        n: u64,
        /// Skew exponent (1.0 = classic Zipf; larger = more skewed).
        s: f64,
    },
}

impl Dist {
    /// A constant distribution.
    pub fn constant(value: f64) -> Dist {
        Dist::Constant { value }
    }

    /// An exponential distribution with the given mean.
    pub fn exp(mean: f64) -> Dist {
        Dist::Exp { mean }
    }

    /// A uniform distribution on `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        Dist::Uniform { lo, hi }
    }

    /// A log-normal with target mean `mean` and shape `sigma`.
    pub fn lognormal(mean: f64, sigma: f64) -> Dist {
        Dist::LogNormal { mean, sigma }
    }

    /// Draw one sample. All samples are clamped to be non-negative.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let v = match self {
            Dist::Constant { value } => *value,
            Dist::Uniform { lo, hi } => {
                if hi <= lo {
                    *lo
                } else {
                    lo + rng.f64() * (hi - lo)
                }
            }
            Dist::Exp { mean } => {
                // Inverse CDF; guard the log argument away from 0.
                let u = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
                -mean * u.ln()
            }
            Dist::LogNormal { mean, sigma } => {
                // If X ~ N(mu, sigma^2) then E[e^X] = e^(mu + sigma^2/2).
                // Choose mu so that the sampled mean equals `mean`.
                let mu = mean.max(f64::MIN_POSITIVE).ln() - sigma * sigma / 2.0;
                (mu + sigma * standard_normal(rng)).exp()
            }
            Dist::Normal { mean, std_dev } => mean + std_dev * standard_normal(rng),
            Dist::Pareto { scale, shape } => {
                let u = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
                scale / u.powf(1.0 / shape.max(f64::MIN_POSITIVE))
            }
            Dist::Bimodal {
                value_a,
                p_a,
                value_b,
            } => {
                if rng.chance(*p_a) {
                    *value_a
                } else {
                    *value_b
                }
            }
            Dist::Empirical { values } => {
                assert!(!values.is_empty(), "sampling empty Empirical dist");
                *rng.choose(values).expect("non-empty")
            }
            Dist::Zipf { n, s } => {
                // Inverse-CDF by bisection over the harmonic partial sums
                // would be exact but slow; use the standard rejection-free
                // approximation via the generalized harmonic inverse.
                let n = (*n).max(1);
                let s = s.max(1e-9);
                let u = rng.f64().max(f64::MIN_POSITIVE);
                if (s - 1.0).abs() < 1e-9 {
                    // H_k ~ ln(k)+gamma: invert ln-based CDF.
                    let hn = (n as f64).ln() + 0.577_215_664_9;
                    ((u * hn).exp() - 0.0).clamp(1.0, n as f64).floor()
                } else {
                    // CDF(k) ~ (k^(1-s) - 1) / (n^(1-s) - 1).
                    let p = 1.0 - s;
                    let hn = ((n as f64).powf(p) - 1.0) / p;
                    ((u * hn * p + 1.0).powf(1.0 / p))
                        .clamp(1.0, n as f64)
                        .floor()
                }
            }
        };
        v.max(0.0)
    }

    /// Sample and interpret the value as *seconds*, returning a duration.
    pub fn sample_duration(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.sample(rng))
    }

    /// Sample and interpret the value as a byte count (rounded, >= 0).
    pub fn sample_bytes(&self, rng: &mut SimRng) -> u64 {
        self.sample(rng).round().max(0.0) as u64
    }

    /// Analytic mean of the distribution where finite and defined.
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant { value } => *value,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exp { mean } => *mean,
            Dist::LogNormal { mean, .. } => *mean,
            Dist::Normal { mean, .. } => *mean,
            Dist::Pareto { scale, shape } => {
                if *shape > 1.0 {
                    shape * scale / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Dist::Bimodal {
                value_a,
                p_a,
                value_b,
            } => p_a * value_a + (1.0 - p_a) * value_b,
            Dist::Empirical { values } => {
                if values.is_empty() {
                    0.0
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                }
            }
            Dist::Zipf { n, s } => {
                // Exact by summation (n is small in practice).
                let norm: f64 = (1..=*n).map(|k| (k as f64).powf(-s)).sum();
                (1..=*n)
                    .map(|k| k as f64 * (k as f64).powf(-s) / norm)
                    .sum()
            }
        }
    }

    /// Scale the distribution by a positive factor (all samples multiplied).
    pub fn scaled(&self, k: f64) -> Dist {
        match self {
            Dist::Constant { value } => Dist::Constant { value: value * k },
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * k,
                hi: hi * k,
            },
            Dist::Exp { mean } => Dist::Exp { mean: mean * k },
            Dist::LogNormal { mean, sigma } => Dist::LogNormal {
                mean: mean * k,
                sigma: *sigma,
            },
            Dist::Normal { mean, std_dev } => Dist::Normal {
                mean: mean * k,
                std_dev: std_dev * k,
            },
            Dist::Pareto { scale, shape } => Dist::Pareto {
                scale: scale * k,
                shape: *shape,
            },
            Dist::Bimodal {
                value_a,
                p_a,
                value_b,
            } => Dist::Bimodal {
                value_a: value_a * k,
                p_a: *p_a,
                value_b: value_b * k,
            },
            Dist::Empirical { values } => Dist::Empirical {
                values: values.iter().map(|v| v * k).collect(),
            },
            // Zipf is a rank distribution; scaling is not meaningful, so it
            // passes through unchanged.
            Dist::Zipf { n, s } => Dist::Zipf { n: *n, s: *s },
        }
    }
}

/// One standard-normal draw via Box–Muller (the non-cached variant; a cached
/// pair would make draw counts depend on call sites, hurting determinism
/// reasoning).
fn standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = rng.f64().max(f64::MIN_POSITIVE);
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &Dist, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::new(1);
        let d = Dist::constant(3.5);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::uniform(2.0, 4.0);
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&v));
        }
        assert!((mean_of(&d, 50_000, 3) - 3.0).abs() < 0.02);
        // Degenerate range collapses to lo.
        assert_eq!(Dist::uniform(5.0, 5.0).sample(&mut rng), 5.0);
    }

    #[test]
    fn exp_mean_converges() {
        let d = Dist::exp(0.25);
        assert!((mean_of(&d, 100_000, 4) - 0.25).abs() < 0.01);
    }

    #[test]
    fn lognormal_mean_converges() {
        let d = Dist::lognormal(10.0, 0.5);
        assert!((mean_of(&d, 200_000, 5) - 10.0).abs() < 0.2);
    }

    #[test]
    fn normal_clamps_at_zero() {
        let d = Dist::Normal {
            mean: 0.0,
            std_dev: 1.0,
        };
        let mut rng = SimRng::new(6);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn pareto_min_and_mean() {
        let d = Dist::Pareto {
            scale: 1.0,
            shape: 3.0,
        };
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        assert!((d.mean() - 1.5).abs() < 1e-12);
        assert!((mean_of(&d, 200_000, 8) - 1.5).abs() < 0.05);
        assert!(Dist::Pareto {
            scale: 1.0,
            shape: 0.9
        }
        .mean()
        .is_infinite());
    }

    #[test]
    fn bimodal_mixes() {
        let d = Dist::Bimodal {
            value_a: 1.0,
            p_a: 0.9,
            value_b: 100.0,
        };
        assert!((d.mean() - 10.9).abs() < 1e-9);
        assert!((mean_of(&d, 100_000, 9) - 10.9).abs() < 0.5);
    }

    #[test]
    fn empirical_samples_from_pool() {
        let d = Dist::Empirical {
            values: vec![1.0, 2.0, 3.0],
        };
        let mut rng = SimRng::new(10);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!(v == 1.0 || v == 2.0 || v == 3.0);
        }
        assert!((d.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_scales_mean() {
        let d = Dist::exp(2.0).scaled(3.0);
        assert_eq!(d.mean(), 6.0);
        let d = Dist::uniform(1.0, 3.0).scaled(2.0);
        assert_eq!(d.mean(), 4.0);
    }

    #[test]
    fn sample_duration_and_bytes() {
        let mut rng = SimRng::new(11);
        let d = Dist::constant(0.002);
        assert_eq!(d.sample_duration(&mut rng).as_millis(), 2);
        let d = Dist::constant(1536.4);
        assert_eq!(d.sample_bytes(&mut rng), 1536);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Dist::Zipf { n: 100, s: 1.0 };
        let mut rng = SimRng::new(12);
        let mut rank1 = 0;
        let mut valid = true;
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            if !(1.0..=100.0).contains(&v) {
                valid = false;
            }
            if v == 1.0 {
                rank1 += 1;
            }
        }
        assert!(valid, "samples outside [1, n]");
        // H_100 ~ 5.19: rank 1 should get ~19% of draws.
        assert!((1_000..3_500).contains(&rank1), "rank1 drawn {rank1}");
    }

    #[test]
    fn zipf_mean_is_finite_and_small() {
        let d = Dist::Zipf { n: 1000, s: 1.2 };
        let m = d.mean();
        assert!(m > 1.0 && m < 100.0, "mean {m}");
    }

    #[test]
    fn serde_round_trip() {
        let d = Dist::LogNormal {
            mean: 5.0,
            sigma: 0.25,
        };
        let s = serde_json::to_string(&d).unwrap();
        let back: Dist = serde_json::from_str(&s).unwrap();
        assert_eq!(d, back);
    }
}
