//! Online statistics: Welford mean/variance, EWMA, rate meters.
//!
//! These are the building blocks for sidecar telemetry (per-upstream latency
//! EWMAs drive the EWMA load-balancing policy), link utilization accounting,
//! and the experiment harness's summary tables.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Numerically stable online mean/variance (Welford's algorithm).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// New empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation (0 if fewer than 2 observations).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exponentially weighted moving average with a configurable smoothing
/// factor `alpha` (weight of the newest sample).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Record a sample.
    pub fn push(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current average, or `default` if no samples yet.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Current average, if any sample has been recorded.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Whether any sample has been recorded.
    pub fn is_primed(&self) -> bool {
        self.value.is_some()
    }
}

/// Windowed byte/event rate meter: counts within fixed windows and reports
/// the previous complete window's rate. Used for link-utilization telemetry.
#[derive(Clone, Debug)]
pub struct RateMeter {
    window: SimDuration,
    window_start: SimTime,
    current: u64,
    last_rate_per_sec: f64,
    total: u64,
}

impl RateMeter {
    /// Create with the given aggregation window.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "zero-width window");
        RateMeter {
            window,
            window_start: SimTime::ZERO,
            current: 0,
            last_rate_per_sec: 0.0,
            total: 0,
        }
    }

    /// Record `amount` units at time `now`, rolling windows forward as needed.
    pub fn record(&mut self, now: SimTime, amount: u64) {
        self.roll(now);
        self.current += amount;
        self.total += amount;
    }

    fn roll(&mut self, now: SimTime) {
        while now >= self.window_start + self.window {
            self.last_rate_per_sec = self.current as f64 / self.window.as_secs_f64();
            self.current = 0;
            self.window_start += self.window;
        }
    }

    /// Rate (units/second) of the last *complete* window before `now`.
    pub fn rate_per_sec(&mut self, now: SimTime) -> f64 {
        self.roll(now);
        self.last_rate_per_sec
    }

    /// Lifetime total.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Compute an exact quantile of a pre-sorted slice using the nearest-rank
/// method; used by the harness when full sample vectors are available.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for i in 0..1000 {
            let x = (i as f64).sin() * 10.0 + 50.0;
            if i % 3 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        // Merging into empty copies.
        let mut e = Welford::new();
        e.merge(&all);
        assert!((e.mean() - all.mean()).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.2);
        assert!(!e.is_primed());
        assert_eq!(e.get_or(7.0), 7.0);
        for _ in 0..200 {
            e.push(3.0);
        }
        assert!((e.get().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_sample_is_exact() {
        let mut e = Ewma::new(0.1);
        e.push(42.0);
        assert_eq!(e.get(), Some(42.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn rate_meter_reports_previous_window() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        // 1000 units in the first second.
        m.record(SimTime::from_millis(100), 400);
        m.record(SimTime::from_millis(900), 600);
        // Still inside window 0: last complete window is empty.
        assert_eq!(m.rate_per_sec(SimTime::from_millis(950)), 0.0);
        // After rolling into window 1, window 0's rate is visible.
        assert_eq!(m.rate_per_sec(SimTime::from_millis(1500)), 1000.0);
        assert_eq!(m.total(), 1000);
    }

    #[test]
    fn rate_meter_skips_idle_windows() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        m.record(SimTime::from_millis(100), 500);
        // Jump 10 windows ahead: intermediate empty windows zero the rate.
        assert_eq!(m.rate_per_sec(SimTime::from_secs(10)), 0.0);
    }

    #[test]
    fn quantile_sorted_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(quantile_sorted(&xs, 0.5), 5.0);
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 10.0);
        assert_eq!(quantile_sorted(&xs, 0.99), 10.0);
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
    }
}
