//! HDR-style log-linear histogram.
//!
//! The paper measures p50/p99 HTTP request latency with `wrk2`, whose
//! defining feature is an HdrHistogram recording latencies *relative to the
//! intended send time* (avoiding coordinated omission). This module provides
//! the histogram half of that methodology; the workload crate provides the
//! intended-send-time half.
//!
//! Layout: values are bucketed into half-open ranges whose width doubles
//! every `sub_buckets` entries, giving a bounded relative error of
//! `1 / sub_buckets` anywhere in the range — the same scheme as
//! HdrHistogram with `significant_figures ≈ log10(sub_buckets)`.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power-of-two band. 256 gives a relative
/// error under 0.4 %, comfortably below run-to-run noise.
const SUB_BUCKETS: u64 = 256;
const SUB_BITS: u32 = 8; // log2(SUB_BUCKETS)

/// A log-linear histogram of `u64` values (we record nanoseconds).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Index of the bucket holding `v`.
    ///
    /// Values `0..SUB_BUCKETS` map to their own unit-width buckets; beyond
    /// that, each power-of-two band above `SUB_BUCKETS` is split into
    /// `SUB_BUCKETS/2` buckets of equal width.
    fn index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        // Highest set bit position.
        let msb = 63 - v.leading_zeros();
        // Which band (0 = values in [SUB_BUCKETS, 2*SUB_BUCKETS)).
        let band = msb - SUB_BITS;
        // Position within the band: take the SUB_BITS-1 bits below the msb.
        let shift = band + 1;
        let within = ((v >> shift) & ((SUB_BUCKETS / 2) - 1)) as usize;
        SUB_BUCKETS as usize + band as usize * (SUB_BUCKETS / 2) as usize + within
    }

    /// Lowest value that maps to bucket `i` (inverse of [`Histogram::index`]).
    fn bucket_low(i: usize) -> u64 {
        if i < SUB_BUCKETS as usize {
            return i as u64;
        }
        let rel = i - SUB_BUCKETS as usize;
        let half = (SUB_BUCKETS / 2) as usize;
        let band = (rel / half) as u32;
        let within = (rel % half) as u64;
        let base = SUB_BUCKETS << band; // first value of this power-of-two band
        let width = 1u64 << (band + 1); // bucket width within the band
        base + within * width
    }

    /// Representative (midpoint) value for bucket `i`.
    fn bucket_mid(i: usize) -> u64 {
        let lo = Self::bucket_low(i);
        let hi = if i + 1 < usize::MAX {
            Self::bucket_low(i + 1)
        } else {
            lo
        };
        lo + (hi.saturating_sub(lo)) / 2
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let idx = Self::index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0,1]`, accurate to the bucket width
    /// (≤ 0.4 % relative error). Returns 0 if empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based ceil like HdrHistogram.
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp to observed extremes so p0/p100 are exact.
                return Self::bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50) as a duration.
    pub fn p50(&self) -> SimDuration {
        SimDuration::from_nanos(self.value_at_quantile(0.50))
    }

    /// p90 as a duration.
    pub fn p90(&self) -> SimDuration {
        SimDuration::from_nanos(self.value_at_quantile(0.90))
    }

    /// p99 as a duration.
    pub fn p99(&self) -> SimDuration {
        SimDuration::from_nanos(self.value_at_quantile(0.99))
    }

    /// p99.9 as a duration.
    pub fn p999(&self) -> SimDuration {
        SimDuration::from_nanos(self.value_at_quantile(0.999))
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }

    /// A compact one-line summary (durations in milliseconds).
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.3}ms p50={:.3}ms p90={:.3}ms p99={:.3}ms max={:.3}ms",
            self.total,
            self.mean() / 1e6,
            self.p50().as_millis_f64(),
            self.p90().as_millis_f64(),
            self.p99().as_millis_f64(),
            self.max as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_monotone_and_invertible() {
        let mut prev_idx = 0;
        for v in (0..100_000u64).step_by(7) {
            let idx = Histogram::index(v);
            assert!(idx >= prev_idx, "index not monotone at {v}");
            prev_idx = idx;
            let lo = Histogram::bucket_low(idx);
            assert!(lo <= v, "bucket_low({idx})={lo} > {v}");
            // v must be below the next bucket's low.
            let next_lo = Histogram::bucket_low(idx + 1);
            assert!(v < next_lo, "{v} >= next bucket low {next_lo}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
        assert_eq!(h.value_at_quantile(0.0), 0);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = Histogram::new();
        // 1..=100_000 uniformly: pN must be close to N% of 100_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.value_at_quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.01, "q={q}: got {got}, want ~{expect} (rel {rel})");
        }
    }

    #[test]
    fn mean_and_extremes_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - 250_015.0).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.99), 0);
    }

    #[test]
    fn single_value_all_quantiles() {
        let mut h = Histogram::new();
        h.record(123_456_789);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = h.value_at_quantile(q) as f64;
            assert!((got - 123_456_789.0).abs() / 123_456_789.0 < 0.01);
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 37)
            } else {
                b.record(v * 37)
            }
            both.record(v * 37);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.value_at_quantile(q), both.value_at_quantile(q));
        }
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(42);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn record_duration_records_nanos() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_millis(5));
        let p50 = h.p50();
        assert!((p50.as_millis_f64() - 5.0).abs() / 5.0 < 0.01);
    }

    #[test]
    fn summary_contains_count() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        assert!(h.summary().contains("n=1"));
    }

    /// Exact quantile of a sorted sample using the same 1-based ceil rank
    /// rule as `value_at_quantile`.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len() as u64;
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        sorted[(target - 1) as usize]
    }

    fn check_quantiles_against_exact(samples: &[u64]) -> Result<(), String> {
        let mut h = Histogram::new();
        for &v in samples {
            h.record(v);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let got = h.value_at_quantile(q);
            let rel = (got as f64 - exact as f64).abs() / (exact as f64).max(1.0);
            if rel > 0.004 {
                return Err(format!(
                    "q={q}: histogram {got} vs exact {exact} (rel {rel:.5} > 0.004, n={})",
                    sorted.len()
                ));
            }
        }
        Ok(())
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The documented accuracy contract: any quantile of any sample
        /// set is within 0.4 % relative error of the exact sorted-sample
        /// quantile (ties broken by the same ceil-rank rule).
        #[test]
        fn quantiles_track_exact_sorted_samples(
            n in 1usize..400,
            lo in 0u64..100_000,
            span_exp in 0u32..30,
            seed in 0u64..10_000,
        ) {
            // Xorshift samples across wildly different scales: `span_exp`
            // sweeps from sub-bucket (exact) ranges up to multi-band ones.
            let span = 1u64 << span_exp;
            let mut x = seed.wrapping_mul(2_685_821_657_736_338_717).max(1);
            let samples: Vec<u64> = (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    lo + x % span
                })
                .collect();
            if let Err(e) = check_quantiles_against_exact(&samples) {
                return Err(proptest::prelude::TestCaseError::fail(e));
            }
        }
    }

    #[test]
    fn quantiles_exact_on_degenerate_samples() {
        // Single value: one occupied bucket, min == max.
        for v in [0u64, 1, 255, 256, 1_000_003, u32::MAX as u64 * 7] {
            check_quantiles_against_exact(&[v]).unwrap();
        }
        // Constant samples (min == max, many counts in one bucket).
        check_quantiles_against_exact(&[42_000_000; 257]).unwrap();
        // All samples inside one unit-width bucket band.
        check_quantiles_against_exact(&(0..SUB_BUCKETS).map(|_| 7u64).collect::<Vec<_>>()).unwrap();
    }
}
