//! Virtual time.
//!
//! Simulated time is a monotone 64-bit nanosecond counter. `u64` nanoseconds
//! cover ~584 years of simulated time, far beyond any experiment here, and
//! integer arithmetic keeps event ordering exact (no floating-point drift).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs clamp to zero: durations are spans of
    /// simulated time and cannot be negative.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating multiply by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor, clamping negatives to zero.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Time needed to serialize `bytes` onto a link of `rate_bps` bits/second.
///
/// Rounds up to the next nanosecond so back-to-back transmissions never
/// overlap. A zero rate yields [`SimDuration::MAX`] (the link never drains),
/// which callers treat as a dead link.
pub fn tx_time(bytes: u64, rate_bps: u64) -> SimDuration {
    if rate_bps == 0 {
        return SimDuration::MAX;
    }
    let bits = bytes as u128 * 8;
    let ns = (bits * 1_000_000_000).div_ceil(rate_bps as u128);
    SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_millis(1500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.as_millis(), 1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(250);
        assert_eq!(t.as_millis(), 1250);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d.as_millis(), 250);
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.001).as_micros(), 1000);
    }

    #[test]
    fn tx_time_exact() {
        // 1500 bytes at 1 Gbps = 12 microseconds.
        assert_eq!(tx_time(1500, 1_000_000_000), SimDuration::from_micros(12));
        // 1 byte at 8 bps = 1 second.
        assert_eq!(tx_time(1, 8), SimDuration::from_secs(1));
        // Rounds up.
        assert_eq!(tx_time(1, 3).as_nanos(), 2_666_666_667);
        assert_eq!(tx_time(1500, 0), SimDuration::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1)), "0.001000s");
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(5)),
            Some(SimTime::from_secs(5))
        );
    }

    #[test]
    fn mul_helpers() {
        assert_eq!(
            SimDuration::from_millis(10).saturating_mul(3),
            SimDuration::from_millis(30)
        );
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(0.5),
            SimDuration::from_millis(5)
        );
        assert_eq!(
            SimDuration::from_millis(10).saturating_sub(SimDuration::from_millis(20)),
            SimDuration::ZERO
        );
    }
}
