//! # meshlayer-simcore
//!
//! Deterministic discrete-event simulation core used by every other
//! `meshlayer` crate.
//!
//! The paper's prototype ran on a real 32-core testbed; this crate is the
//! substitute substrate: a virtual clock ([`SimTime`]), a deterministic
//! event queue ([`EventQueue`]) with stable tie-breaking, a seedable RNG
//! ([`SimRng`]) that can be split per component, a library of sampling
//! distributions ([`dist`]), an HDR-style latency histogram ([`Histogram`])
//! matching the measurement fidelity of `wrk2`, and online statistics
//! ([`stats`]).
//!
//! Everything here is pure: no wall-clock reads, no global state, no
//! threads. A simulation run is a function of `(spec, seed)` and nothing
//! else, which is what lets the integration tests pin exact metric values.
//!
//! ```
//! use meshlayer_simcore::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_millis(2), "second");
//! q.push(SimTime::ZERO + SimDuration::from_millis(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t.as_millis(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod fxmap;
pub mod hist;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::Dist;
pub use event::{EventQueue, EVENT_QUEUE_IMPL};
pub use fxmap::{FxHashMap, FxHashSet};
pub use hist::Histogram;
pub use rng::SimRng;
pub use stats::{Ewma, Welford};
pub use time::{SimDuration, SimTime};
