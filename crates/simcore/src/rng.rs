//! Deterministic, splittable randomness.
//!
//! All randomness in a simulation flows from a single root seed. Components
//! obtain their own stream with [`SimRng::split`], keyed by a label, so that
//! adding a new random consumer does not perturb the draws seen by existing
//! ones — a property the regression tests rely on.

/// A seeded simulation RNG.
///
/// An in-tree xoshiro256++ (the algorithm behind rand's `SmallRng` on
/// 64-bit platforms), state-expanded from the seed with splitmix64: fast,
/// deterministic for a given seed, and explicitly not cryptographic —
/// exactly right for simulation.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a root seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            seed,
        }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream keyed by `label`.
    ///
    /// The child seed is `fnv1a(root_seed || label)`, so the mapping from
    /// label to stream is stable across runs and across code changes that
    /// add or remove *other* labels.
    pub fn split(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.seed.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::new(h)
    }

    /// Derive an independent child stream keyed by an index (e.g. a replica
    /// number), composing with [`SimRng::split`] for labelled families.
    pub fn split_idx(&self, label: &str, idx: u64) -> SimRng {
        self.split(label).split(&idx.to_string())
    }

    /// The RNG stream of one logical process (a pod plus its sidecar) in
    /// the sharded event engine: a pure function of `(seed, lp)`.
    ///
    /// This is deliberately the historical `split_idx("sidecar", pod)`
    /// derivation — "sidecar" is the wire name of the pod-LP stream —
    /// so captures recorded before the sharded engine replay unchanged,
    /// and the draws a given pod consumes can never depend on how many
    /// shards (threads) the engine happens to run with. A pinning test
    /// hard-codes the derivation's output.
    pub fn lp_stream(&self, lp: u64) -> SimRng {
        self.split_idx("sidecar", lp)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` over the full range.
    pub fn u64(&mut self) -> u64 {
        // xoshiro256++
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        let s2 = s2 ^ t;
        let s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Rejection sampling over the widest multiple of n, so every
        // value in [0, n) is exactly equally likely.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Pick a uniformly random element of `xs`; `None` if empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_stable_and_independent() {
        let root = SimRng::new(7);
        let mut x1 = root.split("link");
        let mut x2 = root.split("link");
        assert_eq!(x1.u64(), x2.u64());
        let mut y = root.split("pod");
        assert_ne!(root.split("link").u64(), y.u64());
    }

    #[test]
    fn split_idx_distinguishes() {
        let root = SimRng::new(7);
        let a = root.split_idx("replica", 0).u64();
        let b = root.split_idx("replica", 1).u64();
        assert_ne!(a, b);
    }

    /// Pins the `(seed, lp)` → stream derivation of [`SimRng::lp_stream`]
    /// to literal values. If this test ever fails, the per-LP streams
    /// moved and every recorded capture is invalidated: do not update the
    /// constants without bumping the flight-recorder format.
    #[test]
    fn lp_stream_derivation_is_pinned() {
        let root = SimRng::new(42);
        let expected: [(u64, u64); 4] = [
            (0, 7779028253670538330),
            (1, 6375213557762187844),
            (2, 14084948068515536441),
            (63, 14305704856544001626),
        ];
        for (lp, first_draw) in expected {
            assert_eq!(
                root.lp_stream(lp).u64(),
                first_draw,
                "lp_stream({lp}) moved for seed 42"
            );
            // The named derivation and the historical split spell the
            // same stream.
            assert_eq!(
                root.lp_stream(lp).u64(),
                root.split_idx("sidecar", lp).u64()
            );
        }
        // Distinct LPs get distinct streams; other seeds differ too.
        assert_ne!(root.lp_stream(0).u64(), root.lp_stream(1).u64());
        assert_ne!(SimRng::new(43).lp_stream(0).u64(), root.lp_stream(0).u64());
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::new(17);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn chance_edges() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = SimRng::new(11);
        let xs = [1, 2, 3];
        assert!(xs.contains(r.choose(&xs).unwrap()));
        let empty: [i32; 0] = [];
        assert!(r.choose(&empty).is_none());

        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle was identity");
    }
}
