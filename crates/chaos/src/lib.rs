//! # meshlayer-chaos
//!
//! The deterministic fault-injection plane: a [`FaultScript`] is a
//! scheduled list of faults that a simulation run injects at exact
//! simulated times. Because the script is part of the spec and every
//! injection travels through the engine's event loop as an ordinary
//! event, a chaos run is exactly as deterministic as a fault-free run —
//! it records and replays bit-identically at any thread count, and every
//! injection (and its later clear) lands in the flight recorder as a
//! tagged fault frame.
//!
//! The faults cover the stack the paper's §2 machinery is supposed to
//! absorb:
//!
//! * **compute layer** — [`FaultKind::PodCrash`] (a replica starts
//!   refusing everything, optionally restarting later; chains of these
//!   model replica churn) and [`FaultKind::GrayFailure`] (slow-but-alive:
//!   inflated compute time and/or a failure rate, the regime where
//!   breakers and outlier detection earn their keep);
//! * **fabric layer** — [`FaultKind::LinkFlap`] (one pod's access links
//!   drop everything for a window) and [`FaultKind::Partition`] (every
//!   replica of a service unreachable until healed);
//! * **control plane** — [`FaultKind::Rollback`] (re-propose an earlier
//!   policy snapshot through the ordinary push/ack protocol).
//!
//! This crate is deliberately tiny and engine-agnostic: it defines the
//! script *format* and helpers. The runtime that resolves service names
//! to pods/links and mutates the world lives in `meshlayer-core`
//! (`sim/chaos.rs`), next to the other engine wiring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use meshlayer_simcore::{SimDuration, SimTime};

/// Stable wire discriminants for fault kinds (part of the flight-recorder
/// format — append, never renumber).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultCode {
    /// Pod crash / restart.
    PodCrash = 0,
    /// Link flap (one pod's access links).
    LinkFlap = 1,
    /// Service partition.
    Partition = 2,
    /// Gray failure (slow-but-alive pod).
    GrayFailure = 3,
    /// Policy rollback.
    Rollback = 4,
}

impl FaultCode {
    /// Inverse of `code as u8`.
    pub fn from_code(code: u8) -> Option<FaultCode> {
        Some(match code {
            0 => FaultCode::PodCrash,
            1 => FaultCode::LinkFlap,
            2 => FaultCode::Partition,
            3 => FaultCode::GrayFailure,
            4 => FaultCode::Rollback,
            _ => return None,
        })
    }

    /// Short label for fault frames and incident timelines.
    pub fn label(self) -> &'static str {
        match self {
            FaultCode::PodCrash => "pod-crash",
            FaultCode::LinkFlap => "link-flap",
            FaultCode::Partition => "partition",
            FaultCode::GrayFailure => "gray-failure",
            FaultCode::Rollback => "rollback",
        }
    }
}

/// One fault to inject. Targets are named by `(service, replica)` — the
/// runtime resolves them against the deployed cluster, so scripts are
/// written against the spec, not against pod ids.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// The replica crashes: every request routed to it is refused
    /// immediately (connection refused → 503), exactly what outlier
    /// detection and circuit breaking exist to absorb. Endpoint
    /// discovery still advertises the pod (stale-endpoints semantics —
    /// in a mesh, *sidecars* detect failure, not discovery). With
    /// `restart_after` the pod comes back healthy after that long.
    PodCrash {
        /// Service whose replica crashes.
        service: String,
        /// 0-based replica index within the service.
        replica: usize,
        /// Restart delay; `None` means the pod stays down for the run.
        restart_after: Option<SimDuration>,
    },
    /// The replica's access links (uplink and downlink) go
    /// administratively down: every packet offered while down is dropped
    /// on the floor, so in-flight transfers stall into timeouts. Comes
    /// back up after `up_after`.
    LinkFlap {
        /// Service whose replica's links flap.
        service: String,
        /// 0-based replica index within the service.
        replica: usize,
        /// How long the links stay down.
        up_after: SimDuration,
    },
    /// Every replica of the service is unreachable (all access links
    /// down) until healed — the service side of a network partition.
    Partition {
        /// Service cut off from the fabric.
        service: String,
        /// How long the partition lasts.
        heal_after: SimDuration,
    },
    /// Slow-but-alive: the replica keeps answering, but compute is
    /// stretched by `speed_factor` and each request fails with
    /// probability `failure_rate`. The nastiest failure mode for
    /// health-checking — nothing is *down*, everything is *worse*.
    GrayFailure {
        /// Service whose replica degrades.
        service: String,
        /// 0-based replica index within the service.
        replica: usize,
        /// Multiplier on compute time (1.0 = unchanged; 10.0 = 10× slower).
        speed_factor: f64,
        /// Per-request failure probability injected while gray (0..=1).
        failure_rate: f64,
        /// Recovery delay; `None` means gray for the rest of the run.
        clear_after: Option<SimDuration>,
    },
    /// Re-propose an earlier policy snapshot as a new version through the
    /// ordinary push/ack fan-out — a config rollback, observable in the
    /// policy plane's transition history and ack frames.
    Rollback {
        /// The historical version whose snapshot is re-proposed.
        to_version: u64,
    },
}

impl FaultKind {
    /// The stable wire code of this fault.
    pub fn code(&self) -> FaultCode {
        match self {
            FaultKind::PodCrash { .. } => FaultCode::PodCrash,
            FaultKind::LinkFlap { .. } => FaultCode::LinkFlap,
            FaultKind::Partition { .. } => FaultCode::Partition,
            FaultKind::GrayFailure { .. } => FaultCode::GrayFailure,
            FaultKind::Rollback { .. } => FaultCode::Rollback,
        }
    }

    /// The subject this fault targets, for fault frames ("reviews/1",
    /// "details", "v1").
    pub fn subject(&self) -> String {
        match self {
            FaultKind::PodCrash {
                service, replica, ..
            }
            | FaultKind::LinkFlap {
                service, replica, ..
            }
            | FaultKind::GrayFailure {
                service, replica, ..
            } => format!("{service}/{replica}"),
            FaultKind::Partition { service, .. } => service.clone(),
            FaultKind::Rollback { to_version } => format!("v{to_version}"),
        }
    }

    /// When the fault clears on its own, the injection→clear delay.
    pub fn clear_after(&self) -> Option<SimDuration> {
        match self {
            FaultKind::PodCrash { restart_after, .. } => *restart_after,
            FaultKind::LinkFlap { up_after, .. } => Some(*up_after),
            FaultKind::Partition { heal_after, .. } => Some(*heal_after),
            FaultKind::GrayFailure { clear_after, .. } => *clear_after,
            FaultKind::Rollback { .. } => None,
        }
    }
}

/// One scheduled fault: inject `kind` at simulated time `at`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Injection time.
    pub at: SimTime,
    /// What to inject.
    pub kind: FaultKind,
}

/// A deterministic fault schedule, part of the simulation spec. The
/// script is data: two runs with the same spec (script included) and
/// seed make identical injections at identical times.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultScript {
    /// The scheduled faults, in the order they were added (injection
    /// order at equal times follows script order).
    pub faults: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty script.
    pub fn new() -> FaultScript {
        FaultScript::default()
    }

    /// Whether the script schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Schedule one fault (builder-style).
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> FaultScript {
        self.faults.push(FaultEvent { at, kind });
        self
    }

    /// Replica churn: `cycles` crash/restart rounds of the same replica,
    /// each `down` long and `period` apart, starting at `from`.
    pub fn with_churn(
        mut self,
        service: &str,
        replica: usize,
        from: SimTime,
        cycles: usize,
        down: SimDuration,
        period: SimDuration,
    ) -> FaultScript {
        let mut at = from;
        for _ in 0..cycles {
            self.faults.push(FaultEvent {
                at,
                kind: FaultKind::PodCrash {
                    service: service.to_string(),
                    replica,
                    restart_after: Some(down),
                },
            });
            at += period;
        }
        self
    }

    /// Render the schedule (one line per fault) for experiment headers.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.faults.iter().enumerate() {
            let clear = match f.kind.clear_after() {
                Some(d) => format!(" clear_after={d}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "fault[{i}] t={:.3}s {} {}{}\n",
                f.at.as_nanos() as f64 / 1e9,
                f.kind.code().label(),
                f.kind.subject(),
                clear
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_codes_round_trip() {
        for c in [
            FaultCode::PodCrash,
            FaultCode::LinkFlap,
            FaultCode::Partition,
            FaultCode::GrayFailure,
            FaultCode::Rollback,
        ] {
            assert_eq!(FaultCode::from_code(c as u8), Some(c));
        }
        assert_eq!(FaultCode::from_code(99), None);
    }

    #[test]
    fn subjects_and_clears() {
        let crash = FaultKind::PodCrash {
            service: "reviews".into(),
            replica: 1,
            restart_after: Some(SimDuration::from_secs(2)),
        };
        assert_eq!(crash.subject(), "reviews/1");
        assert_eq!(crash.clear_after(), Some(SimDuration::from_secs(2)));
        assert_eq!(crash.code().label(), "pod-crash");
        let part = FaultKind::Partition {
            service: "details".into(),
            heal_after: SimDuration::from_millis(500),
        };
        assert_eq!(part.subject(), "details");
        let rb = FaultKind::Rollback { to_version: 1 };
        assert_eq!(rb.subject(), "v1");
        assert_eq!(rb.clear_after(), None);
    }

    #[test]
    fn churn_expands_to_crash_restart_cycles() {
        let s = FaultScript::new().with_churn(
            "backend",
            0,
            SimTime::from_secs(1),
            3,
            SimDuration::from_millis(200),
            SimDuration::from_secs(1),
        );
        assert_eq!(s.faults.len(), 3);
        assert_eq!(s.faults[2].at, SimTime::from_secs(3));
        for f in &s.faults {
            assert!(matches!(
                f.kind,
                FaultKind::PodCrash {
                    restart_after: Some(_),
                    ..
                }
            ));
        }
    }

    #[test]
    fn render_lists_schedule() {
        let s = FaultScript::new().with(
            SimTime::from_secs(2),
            FaultKind::GrayFailure {
                service: "ratings".into(),
                replica: 0,
                speed_factor: 10.0,
                failure_rate: 0.2,
                clear_after: Some(SimDuration::from_secs(1)),
            },
        );
        let r = s.render();
        assert!(r.contains("t=2.000s gray-failure ratings/0"), "{r}");
        assert!(r.contains("clear_after="), "{r}");
    }
}
