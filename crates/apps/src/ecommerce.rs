//! The §4.1 motivating scenario: "a hypothetical microservice-based
//! e-commerce application".
//!
//! Four workloads share the same services, "sometimes buried several hops
//! deep in the tree of API calls":
//!
//! * `user-browse` (latency-sensitive, ~200 ms budget): frontend →
//!   catalog (→ cache → db), recommendations (→ db);
//! * `user-checkout` (latency-sensitive): frontend → cart → orders → db,
//!   plus inventory;
//! * `ads-analytics` (latency-insensitive): scans the catalog and the
//!   order history through the same db/cache;
//! * `log-collect` (latency-insensitive): periodic bulk writes to the
//!   logging service backed by the same db.

use meshlayer_cluster::{CallStep, ComputeConfig, ServiceBehavior, ServiceSpec, Subset};
use meshlayer_core::{Classifier, NetworkPlan, Priority, SimSpec};
use meshlayer_simcore::Dist;
use meshlayer_workload::WorkloadSpec;
use std::collections::BTreeMap;

fn labels(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn prio_split(spec: ServiceSpec) -> ServiceSpec {
    spec.with_replica_labels(vec![
        labels(&[("prio", "high")]),
        labels(&[("prio", "low")]),
    ])
    .with_subset(Subset::label("high", "prio", "high"))
    .with_subset(Subset::label("low", "prio", "low"))
}

/// Build the e-commerce experiment: `(ls_rps, batch_rps)` split across the
/// two user-facing and two batch workloads.
pub fn ecommerce(ls_rps: f64, batch_rps: f64) -> SimSpec {
    let ms = |m: f64| Dist::lognormal(m / 1000.0, 0.5);

    let frontend = ServiceSpec::new(
        "shopfront",
        2,
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(3.0)),
                CallStep::Par(vec![
                    CallStep::call("catalog", "/browse"),
                    CallStep::call("recs", "/browse"),
                ]),
            ]),
            response_bytes: Dist::constant(24_576.0),
        },
    )
    .with_path_behavior(
        "/checkout",
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(2.0)),
                CallStep::call("cart", "/checkout"),
                CallStep::call("inventory", "/reserve"),
            ]),
            response_bytes: Dist::constant(4_096.0),
        },
    )
    .with_path_behavior(
        "/ads",
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(2.0)),
                CallStep::Par(vec![
                    CallStep::call("catalog", "/scan"),
                    CallStep::call("orders", "/scan"),
                ]),
            ]),
            response_bytes: Dist::constant(65_536.0),
        },
    )
    .with_path_behavior(
        "/logs",
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(1.0)),
                CallStep::Call {
                    service: "logging".into(),
                    path: "/append".into(),
                    // Bulk log uploads: large *requests*.
                    req_bytes: Dist::constant(262_144.0),
                },
            ]),
            response_bytes: Dist::constant(512.0),
        },
    );

    let catalog = prio_split(ServiceSpec::new(
        "catalog",
        2,
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(2.0)),
                CallStep::call("cache", "/get"),
            ]),
            response_bytes: Dist::constant(16_384.0),
        },
    ))
    .with_path_behavior(
        "/scan",
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(4.0)),
                CallStep::call("db", "/scan"),
            ]),
            response_bytes: Dist::constant(131_072.0),
        },
    );

    let recs = ServiceSpec::new(
        "recs",
        2,
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(5.0)),
                CallStep::call("db", "/get"),
            ]),
            response_bytes: Dist::constant(8_192.0),
        },
    );

    let cart = ServiceSpec::new(
        "cart",
        2,
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(2.0)),
                CallStep::call("orders", "/create"),
            ]),
            response_bytes: Dist::constant(2_048.0),
        },
    );

    let inventory = ServiceSpec::new(
        "inventory",
        1,
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(1.5)),
                CallStep::call("db", "/get"),
            ]),
            response_bytes: Dist::constant(1_024.0),
        },
    );

    let orders = ServiceSpec::new(
        "orders",
        2,
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(2.0)),
                CallStep::call("db", "/put"),
            ]),
            response_bytes: Dist::constant(1_024.0),
        },
    )
    .with_path_behavior(
        "/scan",
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(4.0)),
                CallStep::call("db", "/scan"),
            ]),
            response_bytes: Dist::constant(131_072.0),
        },
    );

    // The shared cache and database — "buried several hops deep".
    let cache = prio_split(ServiceSpec::new(
        "cache",
        2,
        ServiceBehavior {
            on_request: CallStep::Compute(ms(0.3)),
            response_bytes: Dist::constant(12_288.0),
        },
    ));

    let db = ServiceSpec::new(
        "db",
        1,
        ServiceBehavior {
            on_request: CallStep::Compute(ms(2.0)),
            response_bytes: Dist::constant(8_192.0),
        },
    )
    .with_path_behavior(
        "/scan",
        ServiceBehavior {
            on_request: CallStep::Compute(ms(8.0)),
            // Large scan results congest the db's access link.
            response_bytes: Dist::constant(1_048_576.0),
        },
    )
    .with_path_behavior(
        "/put",
        ServiceBehavior {
            on_request: CallStep::Compute(ms(3.0)),
            response_bytes: Dist::constant(256.0),
        },
    )
    .with_compute(ComputeConfig {
        workers: 32,
        queue_limit: 8192,
        priority_aware: false,
    });

    let logging = ServiceSpec::new(
        "logging",
        1,
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(ms(1.0)),
                CallStep::call("db", "/put"),
            ]),
            response_bytes: Dist::constant(256.0),
        },
    );

    let workloads = vec![
        WorkloadSpec::get("user-browse", "/browse", ls_rps * 0.7).with_authority("shopfront"),
        WorkloadSpec::get("user-checkout", "/checkout", ls_rps * 0.3).with_authority("shopfront"),
        WorkloadSpec::get("ads-analytics", "/ads", batch_rps * 0.6).with_authority("shopfront"),
        WorkloadSpec::get("log-collect", "/logs", batch_rps * 0.4).with_authority("shopfront"),
    ];

    let network = NetworkPlan {
        default_rate_bps: 10_000_000_000,
        queue_pkts: 2048,
        ..NetworkPlan::default()
    }
    .with_service_rate("db", 1_000_000_000)
    .with_service_rate("cache", 2_000_000_000);

    let classifier = Classifier::new()
        .route("/browse", Priority::High)
        .route("/checkout", Priority::High)
        .route("/ads", Priority::Low)
        .route("/logs", Priority::Low);

    let mut spec = SimSpec::new(
        vec![
            frontend, catalog, recs, cart, inventory, orders, cache, db, logging,
        ],
        workloads,
    );
    spec.network = network;
    spec.classifier = classifier;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_shape() {
        let spec = ecommerce(20.0, 10.0);
        assert_eq!(spec.services.len(), 9);
        assert_eq!(spec.workloads.len(), 4);
        assert_eq!(spec.network.rate_for("db"), 1_000_000_000);
    }

    #[test]
    fn rates_split_across_workloads() {
        let spec = ecommerce(20.0, 10.0);
        let total_ls: f64 = spec
            .workloads
            .iter()
            .filter(|w| w.name.starts_with("user"))
            .map(|w| w.arrival.rps())
            .sum();
        assert!((total_ls - 20.0).abs() < 1e-9);
    }

    #[test]
    fn classification() {
        let spec = ecommerce(10.0, 10.0);
        for (path, want) in [
            ("/browse/1", Priority::High),
            ("/checkout", Priority::High),
            ("/ads/scan", Priority::Low),
            ("/logs/upload", Priority::Low),
        ] {
            let req = meshlayer_http::Request::get("shopfront", path);
            assert_eq!(spec.classifier.classify(&req), want, "{path}");
        }
    }

    #[test]
    fn deep_call_tree() {
        // browse: shopfront -> catalog -> cache = depth 3 of calls.
        let spec = ecommerce(10.0, 10.0);
        let mut sim = meshlayer_core::Simulation::build(spec);
        let _ = &mut sim;
        let browse = sim.cluster().behavior("shopfront", "/browse").unwrap();
        assert!(browse.on_request.call_count() >= 2);
    }

    #[test]
    fn builds_and_deploys() {
        let sim = meshlayer_core::Simulation::build(ecommerce(5.0, 5.0));
        assert!(sim.cluster().pod_count() >= 14);
    }
}
