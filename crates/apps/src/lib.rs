//! # meshlayer-apps
//!
//! Reference applications for the experiments.
//!
//! * [`elibrary()`] — the paper's Fig 3 setup: an e-library app (bookinfo
//!   derivative) with front end, details, two reviews replicas and
//!   ratings, a 1 Gbps bottleneck at the ratings segment, and the two
//!   workloads of §4.3 (latency-sensitive browsing + batch analytics with
//!   ≈200× larger responses).
//! * [`ecommerce()`] — the §4.1 motivating scenario at larger scale:
//!   user-facing requests, advertising/recommendation analytics scans,
//!   periodic product-database updates and log collection, all sharing
//!   caches and databases "buried several hops deep".
//! * [`fanout()`] — a synthetic fan-out/fan-in app for microbenchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ecommerce;
pub mod elibrary;
pub mod fanout;

pub use ecommerce::ecommerce;
pub use elibrary::{elibrary, ElibraryParams};
pub use fanout::fanout;
