//! Synthetic fan-out application for microbenchmarks.
//!
//! A root service calls `width` leaf services in parallel, each `depth`
//! levels deep — the classic tail-at-scale shape used by the sidecar-
//! overhead (T2) and load-balancing (A3) experiments.

use meshlayer_cluster::{CallStep, ServiceBehavior, ServiceSpec};
use meshlayer_core::{Classifier, Priority, SimSpec};
use meshlayer_simcore::Dist;
use meshlayer_workload::WorkloadSpec;

/// Build a fan-out app: `width` parallel chains of `depth` services under
/// one root, with `replicas` replicas per leaf service and exponential
/// service times of mean `svc_ms` milliseconds.
pub fn fanout(width: usize, depth: usize, replicas: u32, svc_ms: f64, rps: f64) -> SimSpec {
    assert!(width >= 1 && depth >= 1, "degenerate fanout");
    let mut services = Vec::new();
    // Chains: svc-c{i}-d{j} calls svc-c{i}-d{j+1}.
    for c in 0..width {
        for d in 0..depth {
            let name = format!("svc-c{c}-d{d}");
            let behavior = if d + 1 < depth {
                ServiceBehavior {
                    on_request: CallStep::Seq(vec![
                        CallStep::Compute(Dist::exp(svc_ms / 1000.0)),
                        CallStep::call(format!("svc-c{c}-d{}", d + 1), "/work"),
                    ]),
                    response_bytes: Dist::constant(2_048.0),
                }
            } else {
                ServiceBehavior {
                    on_request: CallStep::Compute(Dist::exp(svc_ms / 1000.0)),
                    response_bytes: Dist::constant(2_048.0),
                }
            };
            services.push(ServiceSpec::new(name, replicas, behavior));
        }
    }
    // Root fans out to every chain head.
    let root = ServiceSpec::new(
        "root",
        1,
        ServiceBehavior {
            on_request: CallStep::Par(
                (0..width)
                    .map(|c| CallStep::call(format!("svc-c{c}-d0"), "/work"))
                    .collect(),
            ),
            response_bytes: Dist::constant(4_096.0),
        },
    );
    services.push(root);

    let workload = WorkloadSpec::get("fanout", "/work", rps).with_authority("root");
    let mut spec = SimSpec::new(services, vec![workload]);
    spec.classifier = Classifier::new().route("/", Priority::High);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_width_times_depth_plus_root() {
        let spec = fanout(3, 2, 1, 1.0, 10.0);
        assert_eq!(spec.services.len(), 3 * 2 + 1);
        let root = spec.services.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(root.behaviors[0].1.on_request.call_count(), 3);
    }

    #[test]
    fn chains_link_downward() {
        let spec = fanout(1, 3, 1, 1.0, 10.0);
        let head = spec
            .services
            .iter()
            .find(|s| s.name == "svc-c0-d0")
            .unwrap();
        match &head.behaviors[0].1.on_request {
            CallStep::Seq(steps) => match &steps[1] {
                CallStep::Call { service, .. } => assert_eq!(service, "svc-c0-d1"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_width_rejected() {
        fanout(0, 1, 1, 1.0, 1.0);
    }

    #[test]
    fn deploys() {
        let sim = meshlayer_core::Simulation::build(fanout(2, 2, 2, 1.0, 5.0));
        // 4 leaf services x2 replicas + root + ingress = 10.
        assert_eq!(sim.cluster().pod_count(), 10);
    }
}
