//! The e-library application (paper Fig 3).
//!
//! Topology (requests flow left to right, responses back):
//!
//! ```text
//!   ingress ─ frontend ─┬─ details
//!                       └─ reviews-1 ─┐
//!                          reviews-2 ─┴─ ratings   ← 1 Gbps bottleneck
//! ```
//!
//! Two workloads hit the ingress simultaneously (§4.3): latency-sensitive
//! `/product` requests (users traversing the site) and latency-insensitive
//! `/analytics` requests whose responses are ≈200× larger (a batch
//! analytics job). Both share the ratings access link, so their network
//! responses "compete for bandwidth here".

use meshlayer_cluster::{CallStep, ComputeConfig, ServiceBehavior, ServiceSpec, Subset};
use meshlayer_core::{Classifier, NetworkPlan, Priority, SimSpec};
use meshlayer_simcore::Dist;
use meshlayer_workload::WorkloadSpec;
use std::collections::BTreeMap;

/// Tunable parameters of the e-library experiment.
#[derive(Clone, Debug)]
pub struct ElibraryParams {
    /// Latency-sensitive requests per second.
    pub ls_rps: f64,
    /// Batch requests per second.
    pub batch_rps: f64,
    /// Bottleneck (ratings access link) rate, bits/second. Paper: 1 Gbps.
    pub bottleneck_bps: u64,
    /// Non-bottleneck link rate. Paper: 15 Gbps.
    pub line_rate_bps: u64,
    /// Latency-sensitive ratings response size (bytes).
    pub ls_resp_bytes: f64,
    /// Batch/LS response ratio. Paper: ≈200×.
    pub batch_ratio: f64,
    /// Access-link queue capacity in packets.
    pub queue_pkts: usize,
}

impl Default for ElibraryParams {
    fn default() -> Self {
        ElibraryParams {
            ls_rps: 30.0,
            batch_rps: 30.0,
            bottleneck_bps: 1_000_000_000,
            line_rate_bps: 15_000_000_000,
            ls_resp_bytes: 8_192.0,
            batch_ratio: 200.0,
            queue_pkts: 4096,
        }
    }
}

fn labels(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Build the full experiment spec (services, network, workloads,
/// classifier). The caller sets `spec.xlayer` and `spec.config`.
pub fn elibrary(params: &ElibraryParams) -> SimSpec {
    let big = params.ls_resp_bytes * params.batch_ratio;

    // --- frontend ---------------------------------------------------
    let frontend = ServiceSpec::new(
        "frontend",
        1,
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(Dist::lognormal(0.004, 0.4)),
                CallStep::Par(vec![
                    CallStep::call("details", "/product"),
                    CallStep::call("reviews", "/product"),
                ]),
                CallStep::Compute(Dist::lognormal(0.002, 0.4)),
            ]),
            response_bytes: Dist::constant(params.ls_resp_bytes),
        },
    )
    .with_path_behavior(
        "/analytics",
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(Dist::lognormal(0.003, 0.4)),
                CallStep::call("reviews", "/analytics"),
            ]),
            // The frontend aggregates the scan into a summary.
            response_bytes: Dist::constant(params.ls_resp_bytes * 4.0),
        },
    )
    .with_compute(ComputeConfig {
        workers: 16,
        queue_limit: 4096,
        priority_aware: false,
    });

    // --- details ----------------------------------------------------
    let details = ServiceSpec::new(
        "details",
        1,
        ServiceBehavior {
            on_request: CallStep::Compute(Dist::lognormal(0.003, 0.5)),
            response_bytes: Dist::constant(params.ls_resp_bytes / 2.0),
        },
    );

    // --- reviews (2 replicas with high/low subsets) ------------------
    let reviews = ServiceSpec::new(
        "reviews",
        2,
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(Dist::lognormal(0.004, 0.5)),
                CallStep::call("ratings", "/product"),
            ]),
            response_bytes: Dist::constant(params.ls_resp_bytes),
        },
    )
    .with_path_behavior(
        "/analytics",
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(Dist::lognormal(0.006, 0.5)),
                CallStep::call("ratings", "/analytics"),
            ]),
            // Aggregated scan result forwarded upward (off-bottleneck).
            response_bytes: Dist::constant(big / 4.0),
        },
    )
    .with_replica_labels(vec![
        labels(&[("prio", "high")]),
        labels(&[("prio", "low")]),
    ])
    .with_subset(Subset::label("high", "prio", "high"))
    .with_subset(Subset::label("low", "prio", "low"))
    .with_compute(ComputeConfig {
        workers: 16,
        queue_limit: 4096,
        priority_aware: false,
    });

    // --- ratings (the bottleneck service) ----------------------------
    let ratings = ServiceSpec::new(
        "ratings",
        1,
        ServiceBehavior {
            on_request: CallStep::Compute(Dist::lognormal(0.002, 0.5)),
            response_bytes: Dist::constant(params.ls_resp_bytes),
        },
    )
    .with_path_behavior(
        "/analytics",
        ServiceBehavior {
            on_request: CallStep::Compute(Dist::lognormal(0.004, 0.5)),
            // The big scan payload: this is what congests the 1 Gbps link.
            response_bytes: Dist::constant(big),
        },
    )
    .with_compute(ComputeConfig {
        workers: 32,
        queue_limit: 8192,
        priority_aware: false,
    });

    // --- workloads (§4.3: uniform random inter-arrival) --------------
    let ls = WorkloadSpec::get("latency-sensitive", "/product", params.ls_rps);
    let batch = WorkloadSpec::get("batch-analytics", "/analytics", params.batch_rps);

    // --- network: 15 Gbps everywhere, 1 Gbps at ratings --------------
    let mut network = NetworkPlan {
        default_rate_bps: params.line_rate_bps,
        queue_pkts: params.queue_pkts,
        ..NetworkPlan::default()
    };
    network = network.with_service_rate("ratings", params.bottleneck_bps);

    // --- ingress classification (§4.3 step 1) ------------------------
    let classifier = Classifier::new()
        .route("/product", Priority::High)
        .route("/analytics", Priority::Low);

    let mut spec = SimSpec::new(vec![frontend, details, reviews, ratings], vec![ls, batch]);
    spec.network = network;
    spec.classifier = classifier;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshlayer_core::XLayerConfig;

    #[test]
    fn spec_shape() {
        let spec = elibrary(&ElibraryParams::default());
        assert_eq!(spec.services.len(), 4);
        assert_eq!(spec.workloads.len(), 2);
        assert_eq!(spec.network.rate_for("ratings"), 1_000_000_000);
        assert_eq!(spec.network.rate_for("reviews"), 15_000_000_000);
        let names: Vec<&str> = spec.services.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["frontend", "details", "reviews", "ratings"]);
    }

    #[test]
    fn reviews_has_priority_subsets() {
        let spec = elibrary(&ElibraryParams::default());
        let reviews = spec.services.iter().find(|s| s.name == "reviews").unwrap();
        assert_eq!(reviews.replicas, 2);
        let subset_names: Vec<&str> = reviews.subsets.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(subset_names, vec!["high", "low"]);
    }

    #[test]
    fn batch_responses_are_200x() {
        let p = ElibraryParams::default();
        let spec = elibrary(&p);
        let ratings = spec.services.iter().find(|s| s.name == "ratings").unwrap();
        let (_, product) = &ratings.behaviors[0];
        let (_, analytics) = &ratings.behaviors[1];
        let ratio = analytics.response_bytes.mean() / product.response_bytes.mean();
        assert!((ratio - 200.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn classifier_separates_workloads() {
        let spec = elibrary(&ElibraryParams::default());
        let ls = meshlayer_http::Request::get("frontend", "/product/9");
        let ba = meshlayer_http::Request::get("frontend", "/analytics/scan");
        assert_eq!(spec.classifier.classify(&ls), Priority::High);
        assert_eq!(spec.classifier.classify(&ba), Priority::Low);
    }

    #[test]
    fn builds_a_simulation() {
        let mut spec = elibrary(&ElibraryParams::default());
        spec.xlayer = XLayerConfig::paper_prototype();
        let sim = meshlayer_core::Simulation::build(spec);
        // ingress + frontend + details + reviews x2 + ratings = 6 pods.
        assert_eq!(sim.cluster().pod_count(), 6);
    }
}
