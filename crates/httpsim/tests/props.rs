//! Property-based codec tests: encode/decode round-trips with arbitrary
//! header sets, and wire-size consistency between the simulation's
//! accounting and real serialization.

use meshlayer_http::codec::{
    decode_request_head, decode_response_head, encode_request_head, encode_response_head,
    find_head_end,
};
use meshlayer_http::{Method, Request, Response, StatusCode};
use proptest::prelude::*;

fn header_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,20}".prop_filter("reserved names", |n| n != "host" && n != "content-length")
}

fn header_value() -> impl Strategy<Value = String> {
    // Token-ish values: no CR/LF/colon edge cases, no leading/trailing
    // whitespace (trimmed by the parser by design).
    "[a-zA-Z0-9_./=+-]{1,30}"
}

proptest! {
    #[test]
    fn request_round_trip(
        method_idx in 0usize..5,
        path in "/[a-z0-9/]{0,30}",
        authority in "[a-z][a-z0-9-]{0,15}",
        body_len in 0u64..1_000_000,
        headers in prop::collection::vec((header_name(), header_value()), 0..10),
    ) {
        let method = [Method::Get, Method::Post, Method::Put, Method::Delete, Method::Head][method_idx];
        let mut req = Request {
            method,
            path: path.clone(),
            authority: authority.clone(),
            headers: Default::default(),
            body_len,
        };
        for (n, v) in &headers {
            req.headers.append(n, v.clone());
        }
        let encoded = encode_request_head(&req);
        prop_assert_eq!(find_head_end(&encoded), Some(encoded.len()));
        let back = decode_request_head(&encoded).unwrap();
        prop_assert_eq!(back.method, method);
        prop_assert_eq!(&back.path, &path);
        prop_assert_eq!(&back.authority, &authority);
        prop_assert_eq!(back.body_len, body_len);
        for (n, v) in &headers {
            prop_assert!(back.headers.get_all(n).contains(&v.as_str()), "lost header {}", n);
        }
        // Simulated wire size == real bytes + body.
        prop_assert_eq!(req.wire_size(), encoded.len() as u64 + body_len);
    }

    #[test]
    fn response_round_trip(
        status in 100u16..600,
        body_len in 0u64..10_000_000,
        headers in prop::collection::vec((header_name(), header_value()), 0..10),
    ) {
        let mut resp = Response {
            status: StatusCode(status),
            headers: Default::default(),
            body_len,
        };
        for (n, v) in &headers {
            resp.headers.append(n, v.clone());
        }
        let encoded = encode_response_head(&resp);
        let back = decode_response_head(&encoded).unwrap();
        prop_assert_eq!(back.status, StatusCode(status));
        prop_assert_eq!(back.body_len, body_len);
        prop_assert_eq!(resp.wire_size(), encoded.len() as u64 + body_len);
    }

    /// Truncated heads never decode as complete and never panic.
    #[test]
    fn truncation_is_detected(cut_ratio in 0.0f64..1.0) {
        let req = Request::post("svc", "/a/b/c", 1234)
            .with_header("x-request-id", "r-1")
            .with_header("x-mesh-priority", "high");
        let encoded = encode_request_head(&req);
        let cut = ((encoded.len() - 1) as f64 * cut_ratio) as usize;
        prop_assert_eq!(find_head_end(&encoded[..cut]), None);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2000)) {
        let _ = decode_request_head(&bytes);
        let _ = decode_response_head(&bytes);
        let _ = find_head_end(&bytes);
    }
}
