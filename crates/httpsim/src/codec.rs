//! Byte-level HTTP/1.1 codec.
//!
//! Used by the real-socket prototype (`meshlayer-realnet`) to speak actual
//! HTTP over TCP, and by tests to validate that the simulated wire sizes
//! line up with real serialization. Supports exactly the subset the mesh
//! needs: request line / status line, headers, `content-length`-framed
//! bodies. No chunked encoding, no HTTP/2.

use crate::headers::{HeaderMap, HDR_CONTENT_LENGTH, HDR_HOST};
use crate::message::{Method, Request, Response, StatusCode};
use bytes::{BufMut, Bytes, BytesMut};

/// Maximum accepted header block, a defense against unbounded buffering.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Codec errors.
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The start line was malformed.
    BadStartLine(String),
    /// A header line was malformed.
    BadHeader(String),
    /// `content-length` missing or unparsable where a body is required.
    BadContentLength,
    /// Header block exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadStartLine(l) => write!(f, "malformed start line: {l:?}"),
            CodecError::BadHeader(l) => write!(f, "malformed header: {l:?}"),
            CodecError::BadContentLength => write!(f, "missing or invalid content-length"),
            CodecError::HeadersTooLarge => write!(f, "header block too large"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialize a request head (start line + headers + CRLF). The body (of
/// `body_len` bytes, supplied by the caller) follows on the wire.
pub fn encode_request_head(req: &Request) -> Bytes {
    let mut buf = BytesMut::with_capacity(256 + req.headers.wire_size());
    buf.put_slice(req.method.as_str().as_bytes());
    buf.put_u8(b' ');
    buf.put_slice(req.path.as_bytes());
    buf.put_slice(b" HTTP/1.1\r\n");
    put_header(&mut buf, HDR_HOST, &req.authority);
    put_header(&mut buf, HDR_CONTENT_LENGTH, &req.body_len.to_string());
    for (n, v) in req.headers.iter() {
        if n == HDR_HOST || n == HDR_CONTENT_LENGTH {
            continue;
        }
        put_header(&mut buf, n, v);
    }
    buf.put_slice(b"\r\n");
    buf.freeze()
}

/// Serialize a response head.
pub fn encode_response_head(resp: &Response) -> Bytes {
    let mut buf = BytesMut::with_capacity(128 + resp.headers.wire_size());
    buf.put_slice(b"HTTP/1.1 ");
    buf.put_slice(resp.status.0.to_string().as_bytes());
    buf.put_u8(b' ');
    buf.put_slice(resp.status.reason().as_bytes());
    buf.put_slice(b"\r\n");
    put_header(&mut buf, HDR_CONTENT_LENGTH, &resp.body_len.to_string());
    for (n, v) in resp.headers.iter() {
        if n == HDR_CONTENT_LENGTH {
            continue;
        }
        put_header(&mut buf, n, v);
    }
    buf.put_slice(b"\r\n");
    buf.freeze()
}

fn put_header(buf: &mut BytesMut, name: &str, value: &str) {
    buf.put_slice(name.as_bytes());
    buf.put_slice(b": ");
    buf.put_slice(value.as_bytes());
    buf.put_slice(b"\r\n");
}

/// Find the end of the header block (`\r\n\r\n`); returns the offset just
/// past it, or `None` if incomplete.
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parse a request head from `buf[..head_end]` (as located by
/// [`find_head_end`]). Returns the request with `body_len` taken from
/// `content-length` (0 if absent).
pub fn decode_request_head(head: &[u8]) -> Result<Request, CodecError> {
    if head.len() > MAX_HEADER_BYTES {
        return Err(CodecError::HeadersTooLarge);
    }
    let text =
        std::str::from_utf8(head).map_err(|_| CodecError::BadStartLine("non-utf8".into()))?;
    let mut lines = text.split("\r\n");
    let start = lines.next().unwrap_or("");
    let mut parts = start.split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| CodecError::BadStartLine(start.into()))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| CodecError::BadStartLine(start.into()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(CodecError::BadStartLine(start.into()));
    }
    let headers = parse_headers(lines)?;
    let authority = headers.get(HDR_HOST).unwrap_or("").to_string();
    let body_len = content_length(&headers)?;
    let mut req = Request {
        method,
        path,
        authority,
        headers,
        body_len,
    };
    req.headers.remove(HDR_HOST);
    req.headers.remove(HDR_CONTENT_LENGTH);
    Ok(req)
}

/// Parse a response head.
pub fn decode_response_head(head: &[u8]) -> Result<Response, CodecError> {
    if head.len() > MAX_HEADER_BYTES {
        return Err(CodecError::HeadersTooLarge);
    }
    let text =
        std::str::from_utf8(head).map_err(|_| CodecError::BadStartLine("non-utf8".into()))?;
    let mut lines = text.split("\r\n");
    let start = lines.next().unwrap_or("");
    let mut parts = start.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(CodecError::BadStartLine(start.into()));
    }
    let status: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| CodecError::BadStartLine(start.into()))?;
    let headers = parse_headers(lines)?;
    let body_len = content_length(&headers)?;
    let mut resp = Response {
        status: StatusCode(status),
        headers,
        body_len,
    };
    resp.headers.remove(HDR_CONTENT_LENGTH);
    Ok(resp)
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<HeaderMap, CodecError> {
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| CodecError::BadHeader(line.into()))?;
        if name.is_empty() || name.contains(' ') {
            return Err(CodecError::BadHeader(line.into()));
        }
        headers.append(name, value.trim());
    }
    Ok(headers)
}

fn content_length(headers: &HeaderMap) -> Result<u64, CodecError> {
    match headers.get(HDR_CONTENT_LENGTH) {
        None => Ok(0),
        Some(v) => v.parse().map_err(|_| CodecError::BadContentLength),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = Request::post("reviews", "/reviews/42", 1234)
            .with_header("x-request-id", "r-1")
            .with_header("x-mesh-priority", "high");
        let head = encode_request_head(&req);
        let end = find_head_end(&head).expect("complete head");
        assert_eq!(end, head.len());
        let back = decode_request_head(&head).unwrap();
        assert_eq!(back.method, Method::Post);
        assert_eq!(back.path, "/reviews/42");
        assert_eq!(back.authority, "reviews");
        assert_eq!(back.body_len, 1234);
        assert_eq!(back.headers.get("x-request-id"), Some("r-1"));
        assert_eq!(back.headers.get("x-mesh-priority"), Some("high"));
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::ok(999).with_header("x-upstream", "reviews-1");
        let head = encode_response_head(&resp);
        let back = decode_response_head(&head).unwrap();
        assert_eq!(back.status, StatusCode::OK);
        assert_eq!(back.body_len, 999);
        assert_eq!(back.headers.get("x-upstream"), Some("reviews-1"));
    }

    #[test]
    fn wire_size_matches_encoded_head() {
        // The simulated wire_size must equal real serialization + body.
        let req = Request::get("details", "/details/7").with_header("x-b3-traceid", "t-99");
        let head = encode_request_head(&req);
        assert_eq!(req.wire_size(), head.len() as u64 + req.body_len);
        let resp = Response::ok(12_345).with_header("x-b3-traceid", "t-99");
        let head = encode_response_head(&resp);
        assert_eq!(resp.wire_size(), head.len() as u64 + resp.body_len);
    }

    #[test]
    fn incremental_head_detection() {
        let req = Request::get("svc", "/x");
        let head = encode_request_head(&req);
        for cut in 0..head.len() - 1 {
            assert_eq!(find_head_end(&head[..cut]), None, "cut={cut}");
        }
        assert_eq!(find_head_end(&head), Some(head.len()));
    }

    #[test]
    fn rejects_malformed_start_lines() {
        assert!(matches!(
            decode_request_head(b"FETCH / HTTP/1.1\r\n\r\n"),
            Err(CodecError::BadStartLine(_))
        ));
        assert!(matches!(
            decode_request_head(b"GET noslash HTTP/1.1\r\n\r\n"),
            Err(CodecError::BadStartLine(_))
        ));
        assert!(matches!(
            decode_request_head(b"GET / SPDY/3\r\n\r\n"),
            Err(CodecError::BadStartLine(_))
        ));
        assert!(matches!(
            decode_response_head(b"HTTP/1.1 abc OK\r\n\r\n"),
            Err(CodecError::BadStartLine(_))
        ));
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(matches!(
            decode_request_head(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n"),
            Err(CodecError::BadHeader(_))
        ));
        assert!(matches!(
            decode_request_head(b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n"),
            Err(CodecError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_bad_content_length() {
        assert!(matches!(
            decode_request_head(b"GET / HTTP/1.1\r\ncontent-length: wat\r\n\r\n"),
            Err(CodecError::BadContentLength)
        ));
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let r = decode_request_head(b"GET /x HTTP/1.1\r\nhost: svc\r\n\r\n").unwrap();
        assert_eq!(r.body_len, 0);
    }

    #[test]
    fn header_value_whitespace_trimmed() {
        let r = decode_request_head(b"GET / HTTP/1.1\r\nx-a:   spaced   \r\n\r\n").unwrap();
        assert_eq!(r.headers.get("x-a"), Some("spaced"));
    }

    #[test]
    fn oversized_head_rejected() {
        let mut head = b"GET / HTTP/1.1\r\n".to_vec();
        head.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES));
        assert_eq!(decode_request_head(&head), Err(CodecError::HeadersTooLarge));
    }
}
