//! # meshlayer-http
//!
//! The application-layer message model shared by the simulated mesh
//! (`meshlayer-mesh`) and the real-socket prototype (`meshlayer-realnet`).
//!
//! * [`headers`] — a case-insensitive header multimap plus the well-known
//!   mesh headers: `x-request-id` (Envoy's request correlation id, which
//!   the paper's prototype uses to propagate priority) and
//!   `x-mesh-priority` (the custom priority header of §4.3).
//! * [`message`] — [`Request`]/[`Response`] with explicit body sizes (the
//!   simulation transfers sizes, not payload bytes).
//! * [`codec`] — a byte-level HTTP/1.1 codec used by the real-socket
//!   prototype; the simulation uses it only to compute wire sizes.
//! * [`route`] — virtual-service routing rules (host/path/header matches to
//!   named clusters and subsets), the Istio `VirtualService` analogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod headers;
pub mod message;
pub mod route;

pub use headers::{HeaderMap, HDR_B3_SPAN_ID, HDR_B3_TRACE_ID, HDR_PRIORITY, HDR_REQUEST_ID};
pub use message::{Method, Request, Response, StatusCode};
pub use route::{HeaderMatch, RouteRule, RouteTable, RouteTarget};
