//! HTTP request/response model.
//!
//! The simulation never materializes body bytes: a [`Request`] or
//! [`Response`] carries its `body_len` and the network transfers that many
//! bytes. The real-socket prototype (`meshlayer-realnet`) materializes
//! bodies through the [`crate::codec`] instead. Both share this type so the
//! sidecar logic is written once.

use crate::headers::{HeaderMap, HDR_CONTENT_LENGTH, HDR_HOST};
use serde::{Deserialize, Serialize};
use std::fmt;

/// HTTP request method (the subset the mesh cares about).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Idempotent read.
    Get,
    /// Create / RPC-style call.
    Post,
    /// Replace.
    Put,
    /// Remove.
    Delete,
    /// Headers only.
    Head,
}

impl Method {
    /// The canonical token, e.g. `GET`.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        }
    }

    /// Parse from a token (case-sensitive, per RFC 9110).
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "HEAD" => Method::Head,
            _ => return None,
        })
    }

    /// Whether requests with this method are safe to retry without an
    /// idempotency guarantee from the application.
    pub fn is_idempotent(self) -> bool {
        !matches!(self, Method::Post)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP status code newtype.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 429 Too Many Requests (circuit breaker / overload).
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// 500 Internal Server Error.
    pub const INTERNAL: StatusCode = StatusCode(500);
    /// 503 Service Unavailable (no healthy upstream).
    pub const UNAVAILABLE: StatusCode = StatusCode(503);
    /// 504 Gateway Timeout (upstream request timed out in the sidecar).
    pub const GATEWAY_TIMEOUT: StatusCode = StatusCode(504);

    /// 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// 5xx — counts against outlier detection in the sidecar.
    pub fn is_server_error(self) -> bool {
        (500..600).contains(&self.0)
    }

    /// Canonical reason phrase (subset).
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            404 => "Not Found",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An HTTP request. `body_len` stands in for the body.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Origin-form path, e.g. `/reviews/42`.
    pub path: String,
    /// Target authority (service name), e.g. `reviews`.
    pub authority: String,
    /// Headers.
    pub headers: HeaderMap,
    /// Body length in bytes.
    pub body_len: u64,
}

impl Request {
    /// A GET request to `authority` `path` with no body.
    pub fn get(authority: impl Into<String>, path: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            path: path.into(),
            authority: authority.into(),
            headers: HeaderMap::new(),
            body_len: 0,
        }
    }

    /// A POST with the given body size.
    pub fn post(authority: impl Into<String>, path: impl Into<String>, body_len: u64) -> Request {
        Request {
            method: Method::Post,
            path: path.into(),
            authority: authority.into(),
            headers: HeaderMap::new(),
            body_len,
        }
    }

    /// Builder-style header setter.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.set(name, value);
        self
    }

    /// Approximate bytes on the wire: request line + headers (incl. host &
    /// content-length) + blank line + body.
    pub fn wire_size(&self) -> u64 {
        let request_line = self.method.as_str().len() + 1 + self.path.len() + 11;
        let host = HDR_HOST.len() + 2 + self.authority.len() + 2;
        let cl = HDR_CONTENT_LENGTH.len() + 2 + digits(self.body_len) + 2;
        (request_line + host + cl + self.headers.wire_size() + 2) as u64 + self.body_len
    }
}

/// An HTTP response. `body_len` stands in for the body.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Headers.
    pub headers: HeaderMap,
    /// Body length in bytes.
    pub body_len: u64,
}

impl Response {
    /// A 200 response with the given body size.
    pub fn ok(body_len: u64) -> Response {
        Response {
            status: StatusCode::OK,
            headers: HeaderMap::new(),
            body_len,
        }
    }

    /// An error response with no body.
    pub fn error(status: StatusCode) -> Response {
        Response {
            status,
            headers: HeaderMap::new(),
            body_len: 0,
        }
    }

    /// Builder-style header setter.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.set(name, value);
        self
    }

    /// Approximate bytes on the wire.
    pub fn wire_size(&self) -> u64 {
        let status_line = 9 + 4 + self.status.reason().len() + 2; // HTTP/1.1 NNN Reason\r\n
        let cl = HDR_CONTENT_LENGTH.len() + 2 + digits(self.body_len) + 2;
        (status_line + cl + self.headers.wire_size() + 2) as u64 + self.body_len
    }
}

fn digits(mut n: u64) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_round_trip() {
        for m in [
            Method::Get,
            Method::Post,
            Method::Put,
            Method::Delete,
            Method::Head,
        ] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("get"), None, "methods are case-sensitive");
        assert_eq!(Method::parse("PATCH"), None);
    }

    #[test]
    fn idempotency() {
        assert!(Method::Get.is_idempotent());
        assert!(!Method::Post.is_idempotent());
        assert!(Method::Put.is_idempotent());
    }

    #[test]
    fn status_classes() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::OK.is_server_error());
        assert!(StatusCode::INTERNAL.is_server_error());
        assert!(StatusCode::UNAVAILABLE.is_server_error());
        assert!(!StatusCode::NOT_FOUND.is_server_error());
        assert_eq!(StatusCode::GATEWAY_TIMEOUT.reason(), "Gateway Timeout");
        assert_eq!(StatusCode(299).reason(), "Unknown");
    }

    #[test]
    fn request_builders() {
        let r = Request::get("reviews", "/reviews/1").with_header("x-mesh-priority", "high");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.authority, "reviews");
        assert_eq!(r.headers.get("x-mesh-priority"), Some("high"));
        assert_eq!(r.body_len, 0);
        let p = Request::post("db", "/write", 4096);
        assert_eq!(p.body_len, 4096);
    }

    #[test]
    fn wire_size_scales_with_body() {
        let small = Request::get("svc", "/a").wire_size();
        let big = Request::post("svc", "/a", 10_000).wire_size();
        assert!(big > small + 9_000);
        let resp_small = Response::ok(10).wire_size();
        let resp_big = Response::ok(100_000).wire_size();
        assert_eq!(resp_big - resp_small, 100_000 - 10 + 4); // +4 digits of content-length
    }

    #[test]
    fn digits_helper() {
        assert_eq!(digits(0), 1);
        assert_eq!(digits(9), 1);
        assert_eq!(digits(10), 2);
        assert_eq!(digits(99_999), 5);
    }

    #[test]
    fn response_error_has_no_body() {
        let r = Response::error(StatusCode::UNAVAILABLE);
        assert_eq!(r.body_len, 0);
        assert!(r.status.is_server_error());
    }
}
