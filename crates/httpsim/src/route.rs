//! Virtual-service routing rules.
//!
//! The Istio `VirtualService`/`DestinationRule` analogue: an ordered rule
//! table mapping `(authority, path prefix, header matches)` to a target
//! cluster and optional *subset*. Subsets are how the paper's prototype
//! pins priorities to replicas — "front end forwards requests to either
//! reviews replica 1 or 2 depending on priority" is one rule matching
//! `x-mesh-priority: high` to subset `high` and a fallback rule to subset
//! `low`.

use crate::headers::HeaderMap;
use crate::message::Request;
use serde::{Deserialize, Serialize};

/// How a header must match.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeaderMatch {
    /// Header present with exactly this value.
    Exact(String, String),
    /// Header present with value starting with this prefix.
    Prefix(String, String),
    /// Header present with any value.
    Present(String),
    /// Header absent.
    Absent(String),
}

impl HeaderMatch {
    /// Evaluate against a header map.
    pub fn matches(&self, headers: &HeaderMap) -> bool {
        match self {
            HeaderMatch::Exact(n, v) => headers.get(n) == Some(v.as_str()),
            HeaderMatch::Prefix(n, p) => headers.get(n).is_some_and(|v| v.starts_with(p)),
            HeaderMatch::Present(n) => headers.contains(n),
            HeaderMatch::Absent(n) => !headers.contains(n),
        }
    }
}

/// Where a matched request goes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteTarget {
    /// Destination cluster (service name).
    pub cluster: String,
    /// Optional subset within the cluster (e.g. `"high"`, `"v2"`).
    pub subset: Option<String>,
    /// Weight for weighted routing among multiple targets (0–100).
    pub weight: u32,
}

impl RouteTarget {
    /// A full-weight target with no subset.
    pub fn cluster(name: impl Into<String>) -> RouteTarget {
        RouteTarget {
            cluster: name.into(),
            subset: None,
            weight: 100,
        }
    }

    /// A full-weight target pinned to a subset.
    pub fn subset(cluster: impl Into<String>, subset: impl Into<String>) -> RouteTarget {
        RouteTarget {
            cluster: cluster.into(),
            subset: Some(subset.into()),
            weight: 100,
        }
    }
}

/// One routing rule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteRule {
    /// Authority (service name) this rule applies to; `None` = any.
    pub authority: Option<String>,
    /// Path prefix; `None` = any.
    pub path_prefix: Option<String>,
    /// Header conditions (all must hold).
    pub headers: Vec<HeaderMatch>,
    /// Targets (weights must sum to 100 when there are several).
    pub targets: Vec<RouteTarget>,
}

impl RouteRule {
    /// A rule matching every request to `authority`, sending it to the
    /// cluster of the same name.
    pub fn passthrough(authority: impl Into<String>) -> RouteRule {
        let a = authority.into();
        RouteRule {
            authority: Some(a.clone()),
            path_prefix: None,
            headers: Vec::new(),
            targets: vec![RouteTarget::cluster(a)],
        }
    }

    /// Whether this rule matches `req`.
    pub fn matches(&self, req: &Request) -> bool {
        if let Some(a) = &self.authority {
            if *a != req.authority {
                return false;
            }
        }
        if let Some(p) = &self.path_prefix {
            if !req.path.starts_with(p.as_str()) {
                return false;
            }
        }
        self.headers.iter().all(|h| h.matches(&req.headers))
    }

    /// Pick a target by weighted choice; `roll` is a uniform draw in
    /// `[0, 100)`. Single-target rules ignore the roll.
    pub fn pick_target(&self, roll: u32) -> Option<&RouteTarget> {
        if self.targets.is_empty() {
            return None;
        }
        if self.targets.len() == 1 {
            return Some(&self.targets[0]);
        }
        let mut acc = 0u32;
        for t in &self.targets {
            acc += t.weight;
            if roll < acc {
                return Some(t);
            }
        }
        self.targets.last()
    }
}

/// An ordered rule table; first match wins.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RouteTable {
    rules: Vec<RouteRule>,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Append a rule.
    pub fn push(&mut self, rule: RouteRule) {
        self.rules.push(rule);
    }

    /// Insert a rule at the front (highest precedence).
    pub fn push_front(&mut self, rule: RouteRule) {
        self.rules.insert(0, rule);
    }

    /// The first rule matching `req`.
    pub fn resolve(&self, req: &Request) -> Option<&RouteRule> {
        self.rules.iter().find(|r| r.matches(req))
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterate over rules in precedence order.
    pub fn iter(&self) -> impl Iterator<Item = &RouteRule> {
        self.rules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::HDR_PRIORITY;

    fn req(authority: &str, path: &str) -> Request {
        Request::get(authority, path)
    }

    #[test]
    fn passthrough_matches_authority_only() {
        let r = RouteRule::passthrough("reviews");
        assert!(r.matches(&req("reviews", "/anything")));
        assert!(!r.matches(&req("details", "/anything")));
        assert_eq!(r.targets[0].cluster, "reviews");
    }

    #[test]
    fn priority_subset_routing() {
        // The paper's rule pair: high priority -> reviews subset "high",
        // everything else -> subset "low".
        let mut table = RouteTable::new();
        table.push(RouteRule {
            authority: Some("reviews".into()),
            path_prefix: None,
            headers: vec![HeaderMatch::Exact(HDR_PRIORITY.into(), "high".into())],
            targets: vec![RouteTarget::subset("reviews", "high")],
        });
        table.push(RouteRule {
            authority: Some("reviews".into()),
            path_prefix: None,
            headers: vec![],
            targets: vec![RouteTarget::subset("reviews", "low")],
        });

        let hi = req("reviews", "/r/1").with_header(HDR_PRIORITY, "high");
        let lo = req("reviews", "/r/1").with_header(HDR_PRIORITY, "low");
        let none = req("reviews", "/r/1");
        assert_eq!(
            table.resolve(&hi).unwrap().targets[0].subset.as_deref(),
            Some("high")
        );
        assert_eq!(
            table.resolve(&lo).unwrap().targets[0].subset.as_deref(),
            Some("low")
        );
        assert_eq!(
            table.resolve(&none).unwrap().targets[0].subset.as_deref(),
            Some("low")
        );
    }

    #[test]
    fn path_prefix_matching() {
        let r = RouteRule {
            authority: None,
            path_prefix: Some("/api/".into()),
            headers: vec![],
            targets: vec![RouteTarget::cluster("api")],
        };
        assert!(r.matches(&req("any", "/api/v1/x")));
        assert!(!r.matches(&req("any", "/web/index")));
    }

    #[test]
    fn header_match_variants() {
        let h = HeaderMap::from([("x-user", "alice-123")]);
        assert!(HeaderMatch::Exact("x-user".into(), "alice-123".into()).matches(&h));
        assert!(!HeaderMatch::Exact("x-user".into(), "alice".into()).matches(&h));
        assert!(HeaderMatch::Prefix("x-user".into(), "alice".into()).matches(&h));
        assert!(HeaderMatch::Present("x-user".into()).matches(&h));
        assert!(!HeaderMatch::Present("x-other".into()).matches(&h));
        assert!(HeaderMatch::Absent("x-other".into()).matches(&h));
        assert!(!HeaderMatch::Absent("x-user".into()).matches(&h));
    }

    #[test]
    fn weighted_pick() {
        let r = RouteRule {
            authority: None,
            path_prefix: None,
            headers: vec![],
            targets: vec![
                RouteTarget {
                    cluster: "v1".into(),
                    subset: None,
                    weight: 90,
                },
                RouteTarget {
                    cluster: "v2".into(),
                    subset: None,
                    weight: 10,
                },
            ],
        };
        assert_eq!(r.pick_target(0).unwrap().cluster, "v1");
        assert_eq!(r.pick_target(89).unwrap().cluster, "v1");
        assert_eq!(r.pick_target(90).unwrap().cluster, "v2");
        assert_eq!(r.pick_target(99).unwrap().cluster, "v2");
        // Out-of-range roll falls back to the last target.
        assert_eq!(r.pick_target(100).unwrap().cluster, "v2");
    }

    #[test]
    fn first_match_wins_and_push_front_overrides() {
        let mut table = RouteTable::new();
        table.push(RouteRule::passthrough("svc"));
        let mut override_rule = RouteRule::passthrough("svc");
        override_rule.targets = vec![RouteTarget::cluster("canary")];
        table.push_front(override_rule);
        assert_eq!(
            table.resolve(&req("svc", "/")).unwrap().targets[0].cluster,
            "canary"
        );
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn no_match_returns_none() {
        let table = RouteTable::new();
        assert!(table.resolve(&req("svc", "/")).is_none());
        assert!(table.is_empty());
    }

    #[test]
    fn empty_targets_pick_none() {
        let r = RouteRule {
            authority: None,
            path_prefix: None,
            headers: vec![],
            targets: vec![],
        };
        assert!(r.pick_target(0).is_none());
    }
}
