//! Case-insensitive HTTP headers and the mesh's well-known header names.
//!
//! The paper's prototype communicates entirely through headers: the front
//! end stamps a custom priority header on ingress requests (§4.3 step 1),
//! and sidecars copy it onto child requests correlated by `x-request-id`
//! (§4.3 step 2). Zipkin-style `x-b3-*` headers carry the trace context
//! that makes distributed tracing — and therefore provenance — work.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Envoy's per-request correlation id, propagated by applications so the
/// mesh can tie an outbound request to the inbound one that caused it.
pub const HDR_REQUEST_ID: &str = "x-request-id";
/// The custom priority header of the paper's prototype (§4.3).
pub const HDR_PRIORITY: &str = "x-mesh-priority";
/// Zipkin B3 trace id (one per end-to-end request tree).
pub const HDR_B3_TRACE_ID: &str = "x-b3-traceid";
/// Zipkin B3 span id (one per service hop).
pub const HDR_B3_SPAN_ID: &str = "x-b3-spanid";
/// Zipkin B3 parent span id.
pub const HDR_B3_PARENT_SPAN_ID: &str = "x-b3-parentspanid";
/// Standard host header.
pub const HDR_HOST: &str = "host";
/// Standard content-length header.
pub const HDR_CONTENT_LENGTH: &str = "content-length";

/// An ordered, case-insensitive header multimap.
///
/// Names are normalized to lowercase at insertion (HTTP/1.1 header names
/// are case-insensitive; HTTP/2 requires lowercase). Insertion order is
/// preserved for deterministic serialization.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    /// An empty map.
    pub fn new() -> Self {
        HeaderMap::default()
    }

    /// Append a header (keeps any existing values for the same name).
    pub fn append(&mut self, name: &str, value: impl Into<String>) {
        self.entries.push((name.to_ascii_lowercase(), value.into()));
    }

    /// Set a header, replacing all existing values for the same name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        let lname = name.to_ascii_lowercase();
        self.entries.retain(|(n, _)| *n != lname);
        self.entries.push((lname, value.into()));
    }

    /// First value for `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        let lname = name.to_ascii_lowercase();
        self.entries
            .iter()
            .find(|(n, _)| *n == lname)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        let lname = name.to_ascii_lowercase();
        self.entries
            .iter()
            .filter(|(n, _)| *n == lname)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Remove all values for `name`; returns how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let lname = name.to_ascii_lowercase();
        let before = self.entries.len();
        self.entries.retain(|(n, _)| *n != lname);
        before - self.entries.len()
    }

    /// Number of header entries (not distinct names).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Approximate wire size: `name: value\r\n` per entry.
    pub fn wire_size(&self) -> usize {
        self.entries
            .iter()
            .map(|(n, v)| n.len() + 2 + v.len() + 2)
            .sum()
    }
}

impl fmt::Display for HeaderMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, v) in self.iter() {
            writeln!(f, "{n}: {v}")?;
        }
        Ok(())
    }
}

impl<const N: usize> From<[(&str, &str); N]> for HeaderMap {
    fn from(pairs: [(&str, &str); N]) -> Self {
        let mut m = HeaderMap::new();
        for (n, v) in pairs {
            m.append(n, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_get_set() {
        let mut h = HeaderMap::new();
        h.set("X-Request-ID", "abc");
        assert_eq!(h.get("x-request-id"), Some("abc"));
        assert_eq!(h.get("X-REQUEST-ID"), Some("abc"));
        assert!(h.contains("x-Request-Id"));
    }

    #[test]
    fn set_replaces_append_accumulates() {
        let mut h = HeaderMap::new();
        h.append("via", "a");
        h.append("via", "b");
        assert_eq!(h.get_all("via"), vec!["a", "b"]);
        h.set("via", "c");
        assert_eq!(h.get_all("via"), vec!["c"]);
        assert_eq!(h.get("via"), Some("c"));
    }

    #[test]
    fn remove_returns_count() {
        let mut h = HeaderMap::from([("a", "1"), ("a", "2"), ("b", "3")]);
        assert_eq!(h.remove("A"), 2);
        assert_eq!(h.remove("a"), 0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn insertion_order_preserved() {
        let h = HeaderMap::from([("z", "1"), ("a", "2"), ("m", "3")]);
        let names: Vec<&str> = h.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z", "a", "m"]);
    }

    #[test]
    fn wire_size_counts_separators() {
        let h = HeaderMap::from([("ab", "cd")]);
        // "ab: cd\r\n" = 8 bytes.
        assert_eq!(h.wire_size(), 8);
    }

    #[test]
    fn display_renders_lines() {
        let h = HeaderMap::from([("a", "1")]);
        assert_eq!(h.to_string(), "a: 1\n");
    }

    #[test]
    fn well_known_names_are_lowercase() {
        for n in [
            HDR_REQUEST_ID,
            HDR_PRIORITY,
            HDR_B3_TRACE_ID,
            HDR_B3_SPAN_ID,
            HDR_B3_PARENT_SPAN_ID,
            HDR_HOST,
            HDR_CONTENT_LENGTH,
        ] {
            assert_eq!(n, n.to_ascii_lowercase());
        }
    }
}
