//! Case-insensitive HTTP headers and the mesh's well-known header names.
//!
//! The paper's prototype communicates entirely through headers: the front
//! end stamps a custom priority header on ingress requests (§4.3 step 1),
//! and sidecars copy it onto child requests correlated by `x-request-id`
//! (§4.3 step 2). Zipkin-style `x-b3-*` headers carry the trace context
//! that makes distributed tracing — and therefore provenance — work.

use serde::{de_field, Deserialize, Error, Node, Serialize};
use std::fmt;

/// Envoy's per-request correlation id, propagated by applications so the
/// mesh can tie an outbound request to the inbound one that caused it.
pub const HDR_REQUEST_ID: &str = "x-request-id";
/// The custom priority header of the paper's prototype (§4.3).
pub const HDR_PRIORITY: &str = "x-mesh-priority";
/// Zipkin B3 trace id (one per end-to-end request tree).
pub const HDR_B3_TRACE_ID: &str = "x-b3-traceid";
/// Zipkin B3 span id (one per service hop).
pub const HDR_B3_SPAN_ID: &str = "x-b3-spanid";
/// Zipkin B3 parent span id.
pub const HDR_B3_PARENT_SPAN_ID: &str = "x-b3-parentspanid";
/// Standard host header.
pub const HDR_HOST: &str = "host";
/// Standard content-length header.
pub const HDR_CONTENT_LENGTH: &str = "content-length";

/// The well-known names interned as `&'static str` so the hot path never
/// allocates for them.
const WELL_KNOWN: [&str; 7] = [
    HDR_REQUEST_ID,
    HDR_PRIORITY,
    HDR_B3_TRACE_ID,
    HDR_B3_SPAN_ID,
    HDR_B3_PARENT_SPAN_ID,
    HDR_HOST,
    HDR_CONTENT_LENGTH,
];

/// An interned, always-lowercase header name.
///
/// Well-known mesh headers (the `HDR_*` constants) are stored as static
/// references; anything else owns a lowercased boxed string. Either way
/// the stored form is lowercase, so lookups compare with
/// `eq_ignore_ascii_case` and never allocate.
#[derive(Clone)]
enum HeaderName {
    Static(&'static str),
    Owned(Box<str>),
}

impl HeaderName {
    fn intern(name: &str) -> HeaderName {
        for w in WELL_KNOWN {
            if name.eq_ignore_ascii_case(w) {
                return HeaderName::Static(w);
            }
        }
        if name.bytes().any(|b| b.is_ascii_uppercase()) {
            HeaderName::Owned(name.to_ascii_lowercase().into_boxed_str())
        } else {
            HeaderName::Owned(name.into())
        }
    }

    fn as_str(&self) -> &str {
        match self {
            HeaderName::Static(s) => s,
            HeaderName::Owned(s) => s,
        }
    }
}

impl PartialEq for HeaderName {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for HeaderName {}

impl fmt::Debug for HeaderName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

/// An ordered, case-insensitive header multimap.
///
/// Names are normalized to lowercase at insertion (HTTP/1.1 header names
/// are case-insensitive; HTTP/2 requires lowercase) and interned when
/// well-known, so lookups by the `HDR_*` constants are allocation-free
/// string compares. Insertion order is preserved for deterministic
/// serialization.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeaderMap {
    entries: Vec<(HeaderName, String)>,
}

/// Stored names are lowercase; a query that is already lowercase hits the
/// fast byte-equality path inside `eq_ignore_ascii_case`.
#[inline]
fn name_eq(stored: &HeaderName, query: &str) -> bool {
    stored.as_str().eq_ignore_ascii_case(query)
}

impl HeaderMap {
    /// An empty map.
    pub fn new() -> Self {
        HeaderMap::default()
    }

    /// Append a header (keeps any existing values for the same name).
    pub fn append(&mut self, name: &str, value: impl Into<String>) {
        self.entries.push((HeaderName::intern(name), value.into()));
    }

    /// Set a header, replacing all existing values for the same name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.entries.retain(|(n, _)| !name_eq(n, name));
        self.entries.push((HeaderName::intern(name), value.into()));
    }

    /// First value for `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| name_eq(n, name))
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(n, _)| name_eq(n, name))
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Remove all values for `name`; returns how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !name_eq(n, name));
        before - self.entries.len()
    }

    /// Number of header entries (not distinct names).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Approximate wire size: `name: value\r\n` per entry.
    pub fn wire_size(&self) -> usize {
        self.entries
            .iter()
            .map(|(n, v)| n.as_str().len() + 2 + v.len() + 2)
            .sum()
    }
}

// Hand-written serde impls that match what `#[derive]` produced when
// `entries` was a plain `Vec<(String, String)>`, so existing captures and
// artifacts keep round-tripping bit-for-bit.
impl Serialize for HeaderMap {
    fn serialize(&self) -> Node {
        Node::Map(vec![(
            "entries".to_string(),
            Node::Seq(
                self.entries
                    .iter()
                    .map(|(n, v)| {
                        Node::Seq(vec![
                            Node::Str(n.as_str().to_string()),
                            Node::Str(v.clone()),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

impl Deserialize for HeaderMap {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        let raw: Vec<(String, String)> = de_field(n, "entries")?;
        Ok(HeaderMap {
            entries: raw
                .into_iter()
                .map(|(name, value)| (HeaderName::intern(&name), value))
                .collect(),
        })
    }
}

impl fmt::Display for HeaderMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, v) in self.iter() {
            writeln!(f, "{n}: {v}")?;
        }
        Ok(())
    }
}

impl<const N: usize> From<[(&str, &str); N]> for HeaderMap {
    fn from(pairs: [(&str, &str); N]) -> Self {
        let mut m = HeaderMap::new();
        for (n, v) in pairs {
            m.append(n, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_get_set() {
        let mut h = HeaderMap::new();
        h.set("X-Request-ID", "abc");
        assert_eq!(h.get("x-request-id"), Some("abc"));
        assert_eq!(h.get("X-REQUEST-ID"), Some("abc"));
        assert!(h.contains("x-Request-Id"));
    }

    #[test]
    fn set_replaces_append_accumulates() {
        let mut h = HeaderMap::new();
        h.append("via", "a");
        h.append("via", "b");
        assert_eq!(h.get_all("via"), vec!["a", "b"]);
        h.set("via", "c");
        assert_eq!(h.get_all("via"), vec!["c"]);
        assert_eq!(h.get("via"), Some("c"));
    }

    #[test]
    fn remove_returns_count() {
        let mut h = HeaderMap::from([("a", "1"), ("a", "2"), ("b", "3")]);
        assert_eq!(h.remove("A"), 2);
        assert_eq!(h.remove("a"), 0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn insertion_order_preserved() {
        let h = HeaderMap::from([("z", "1"), ("a", "2"), ("m", "3")]);
        let names: Vec<&str> = h.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z", "a", "m"]);
    }

    #[test]
    fn wire_size_counts_separators() {
        let h = HeaderMap::from([("ab", "cd")]);
        // "ab: cd\r\n" = 8 bytes.
        assert_eq!(h.wire_size(), 8);
    }

    #[test]
    fn display_renders_lines() {
        let h = HeaderMap::from([("a", "1")]);
        assert_eq!(h.to_string(), "a: 1\n");
    }

    #[test]
    fn serde_shape_matches_plain_tuple_derive() {
        // The wire shape must stay what #[derive] produced for
        // Vec<(String, String)>: {"entries": [[name, value], ...]}.
        let h = HeaderMap::from([("X-Request-Id", "abc"), ("custom", "v")]);
        let expected = Node::Map(vec![(
            "entries".to_string(),
            Node::Seq(vec![
                Node::Seq(vec![
                    Node::Str("x-request-id".into()),
                    Node::Str("abc".into()),
                ]),
                Node::Seq(vec![Node::Str("custom".into()), Node::Str("v".into())]),
            ]),
        )]);
        assert_eq!(h.serialize(), expected);
        assert_eq!(HeaderMap::deserialize(&expected).unwrap(), h);
    }

    #[test]
    fn interning_preserves_case_insensitive_equality() {
        let mut a = HeaderMap::new();
        a.set("X-MESH-PRIORITY", "high"); // interned static
        let mut b = HeaderMap::new();
        b.set("x-mesh-priority", "high");
        assert_eq!(a, b);
        assert_eq!(a.iter().next(), Some((HDR_PRIORITY, "high")));
    }

    #[test]
    fn well_known_names_are_lowercase() {
        for n in [
            HDR_REQUEST_ID,
            HDR_PRIORITY,
            HDR_B3_TRACE_ID,
            HDR_B3_SPAN_ID,
            HDR_B3_PARENT_SPAN_ID,
            HDR_HOST,
            HDR_CONTENT_LENGTH,
        ] {
            assert_eq!(n, n.to_ascii_lowercase());
        }
    }
}
