//! The replay side: stream a recorded log alongside a live re-run and
//! report the **first** divergent event.
//!
//! The engine feeds every live event pop into
//! [`ReplayChecker::check_event`]; the checker advances through the
//! recorded `Event` frames (skipping packet/decision/bind frames) and
//! compares sequence number, simulated time, event kind, and the
//! chained digest. Because digests chain, the first mismatch *is* the
//! first divergence — everything before it is byte-identical.
//!
//! Structural log damage (truncation, checksum failure, undecodable
//! frame) is reported through the same [`Divergence`] type, located at
//! the event where the damage interrupted checking, so "corrupted log"
//! and "non-deterministic run" surface through one code path.

use crate::log::{FrameError, LogReader};
use crate::record::{EndRecord, EventRecord, MetaInfo, Record};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufReader};
use std::path::Path;

/// How many matched events of context to keep before a divergence.
const BEFORE_CONTEXT: usize = 4;
/// How many expected/actual events to show after a divergence.
const AFTER_CONTEXT: usize = 4;

/// A located replay divergence with surrounding context.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Sequence index of the first divergent event.
    pub index: u64,
    /// Simulated time (nanoseconds) of the live event at the divergence.
    pub t_ns: u64,
    /// Human-readable cause (field mismatch, log damage, length skew).
    pub reason: String,
    /// Last matched events before the divergence (oldest first).
    pub before: Vec<EventRecord>,
    /// What the recording expected at and after the divergence point.
    pub expected: Vec<EventRecord>,
    /// What the live run actually produced at and after that point.
    pub actual: Vec<EventRecord>,
}

/// Outcome of a full replay comparison.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Events that matched before the run ended or diverged.
    pub checked: u64,
    /// The first divergence, if any.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// `true` when the live run matched the recording exactly.
    pub fn ok(&self) -> bool {
        self.divergence.is_none()
    }

    /// Render a human-readable summary (multi-line on divergence).
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.divergence {
            None => {
                let _ = writeln!(
                    out,
                    "replay: {} events checked, 0 divergences",
                    self.checked
                );
            }
            Some(d) => {
                let _ = writeln!(
                    out,
                    "replay: DIVERGENCE at event {} (t={:.6}s) after {} matching events",
                    d.index,
                    d.t_ns as f64 / 1e9,
                    self.checked
                );
                let _ = writeln!(out, "  cause: {}", d.reason);
                if !d.before.is_empty() {
                    let _ = writeln!(out, "  before (matched):");
                    for e in &d.before {
                        let _ = writeln!(out, "    {}", fmt_event(e));
                    }
                }
                let _ = writeln!(out, "  expected (recorded):");
                for e in &d.expected {
                    let _ = writeln!(out, "    {}", fmt_event(e));
                }
                if d.expected.is_empty() {
                    let _ = writeln!(out, "    <log exhausted>");
                }
                let _ = writeln!(out, "  actual (live):");
                for e in &d.actual {
                    let _ = writeln!(out, "    {}", fmt_event(e));
                }
                if d.actual.is_empty() {
                    let _ = writeln!(out, "    <live run ended>");
                }
            }
        }
        out
    }
}

fn fmt_event(e: &EventRecord) -> String {
    format!(
        "#{:<8} t={:<14.6} kind={:<2} digest={:016x}",
        e.seq,
        e.t_ns as f64 / 1e9,
        e.kind,
        e.digest
    )
}

enum Source {
    Live(LogReader<BufReader<File>>),
    Failed(Option<FrameError>),
    Done,
}

/// Streams a recorded log and cross-checks a live event sequence
/// against it.
pub struct ReplayChecker {
    source: Source,
    meta: MetaInfo,
    end: Option<EndRecord>,
    before: VecDeque<EventRecord>,
    divergence: Option<Divergence>,
    actual_wanted: usize,
    checked: u64,
}

impl ReplayChecker {
    /// Open a log and read its leading `Meta` frame.
    pub fn open(path: &Path) -> io::Result<ReplayChecker> {
        let mut reader = LogReader::open(path).map_err(frame_to_io)?;
        let meta = match reader.next().map_err(frame_to_io)? {
            Some((_, Record::Meta(m))) => m,
            Some((_, other)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("log does not start with a Meta frame (found {other:?})"),
                ));
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "log contains no frames",
                ));
            }
        };
        Ok(ReplayChecker {
            source: Source::Live(reader),
            meta,
            end: None,
            before: VecDeque::with_capacity(BEFORE_CONTEXT + 1),
            divergence: None,
            actual_wanted: 0,
            checked: 0,
        })
    }

    /// The recorded run's identity (seed, duration, scenario, links).
    pub fn meta(&self) -> &MetaInfo {
        &self.meta
    }

    /// Advance to the next recorded `Event` frame, skipping the other
    /// stream kinds. `Ok(None)` when the log is exhausted.
    fn next_recorded_event(&mut self) -> Result<Option<EventRecord>, String> {
        loop {
            let reader = match &mut self.source {
                Source::Live(r) => r,
                Source::Failed(e) => {
                    let msg = match e.take() {
                        Some(err) => format!("recorded log unreadable: {err}"),
                        None => "recorded log unreadable".to_string(),
                    };
                    return Err(msg);
                }
                Source::Done => return Ok(None),
            };
            match reader.next() {
                Ok(Some((_, Record::Event(e)))) => return Ok(Some(e)),
                Ok(Some((_, Record::End(e)))) => {
                    self.end = Some(e);
                }
                Ok(Some(_)) => {}
                Ok(None) => {
                    self.source = Source::Done;
                    return Ok(None);
                }
                Err(err) => {
                    self.source = Source::Failed(None);
                    return Err(format!("recorded log unreadable: {err}"));
                }
            }
        }
    }

    fn diverge(
        &mut self,
        live: Option<EventRecord>,
        expected_first: Option<EventRecord>,
        reason: String,
    ) {
        let mut expected = Vec::with_capacity(AFTER_CONTEXT);
        if let Some(e) = expected_first {
            expected.push(e);
        }
        while expected.len() < AFTER_CONTEXT {
            match self.next_recorded_event() {
                Ok(Some(e)) => expected.push(e),
                _ => break,
            }
        }
        let (index, t_ns) = match (&live, expected.first()) {
            (Some(l), _) => (l.seq, l.t_ns),
            (None, Some(e)) => (e.seq, e.t_ns),
            (None, None) => (self.checked, 0),
        };
        let mut actual = Vec::with_capacity(AFTER_CONTEXT);
        if let Some(l) = live {
            actual.push(l);
        }
        self.actual_wanted = AFTER_CONTEXT.saturating_sub(actual.len());
        self.divergence = Some(Divergence {
            index,
            t_ns,
            reason,
            before: self.before.iter().copied().collect(),
            expected,
            actual,
        });
    }

    /// Feed one live event. Cheap after a divergence has been found
    /// (only collects a few events of "actual" context, then ignores).
    pub fn check_event(&mut self, live: EventRecord) {
        if let Some(d) = &mut self.divergence {
            if self.actual_wanted > 0 {
                d.actual.push(live);
                self.actual_wanted -= 1;
            }
            return;
        }
        match self.next_recorded_event() {
            Err(reason) => self.diverge(Some(live), None, reason),
            Ok(None) => {
                let reason = format!(
                    "recorded log ends after {} events but live run produced event #{}",
                    self.checked, live.seq
                );
                self.diverge(Some(live), None, reason);
            }
            Ok(Some(rec)) => {
                if rec == live {
                    self.checked += 1;
                    self.before.push_back(rec);
                    if self.before.len() > BEFORE_CONTEXT {
                        self.before.pop_front();
                    }
                } else {
                    let reason = mismatch_reason(&rec, &live);
                    self.diverge(Some(live), Some(rec), reason);
                }
            }
        }
    }

    /// Declare the live run over and produce the report.
    ///
    /// `total_events` / `final_digest` are the live run's totals; they
    /// are checked against any recorded `End` frame and against leftover
    /// recorded events the live run never produced.
    pub fn finish(mut self, total_events: u64, final_digest: u64) -> ReplayReport {
        if self.divergence.is_none() {
            match self.next_recorded_event() {
                Err(reason) => self.diverge(None, None, reason),
                Ok(Some(rec)) => {
                    let reason = format!(
                        "live run ended after {total_events} events but recording expects event #{}",
                        rec.seq
                    );
                    self.diverge(None, Some(rec), reason);
                }
                Ok(None) => {}
            }
        }
        if self.divergence.is_none() {
            match self.end {
                Some(end) => {
                    if end.events != total_events || end.digest != final_digest {
                        self.diverge(
                            None,
                            None,
                            format!(
                                "End frame mismatch: recorded events={} digest={:016x}, live events={} digest={:016x}",
                                end.events, end.digest, total_events, final_digest
                            ),
                        );
                    }
                }
                None => {
                    self.diverge(
                        None,
                        None,
                        "recording has no End frame (capture interrupted?)".to_string(),
                    );
                }
            }
        }
        ReplayReport {
            checked: self.checked,
            divergence: self.divergence,
        }
    }
}

fn mismatch_reason(rec: &EventRecord, live: &EventRecord) -> String {
    if rec.seq != live.seq {
        format!("sequence skew: recorded #{}, live #{}", rec.seq, live.seq)
    } else if rec.t_ns != live.t_ns {
        format!(
            "time mismatch at event #{}: recorded t={}ns, live t={}ns",
            rec.seq, rec.t_ns, live.t_ns
        )
    } else if rec.kind != live.kind {
        format!(
            "event-kind mismatch at event #{}: recorded kind {}, live kind {}",
            rec.seq, rec.kind, live.kind
        )
    } else {
        format!(
            "digest mismatch at event #{}: recorded {:016x}, live {:016x}",
            rec.seq, rec.digest, live.digest
        )
    }
}

fn frame_to_io(e: FrameError) -> io::Error {
    match e {
        FrameError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogWriter;
    use crate::record::FORMAT_VERSION;

    fn meta() -> MetaInfo {
        MetaInfo {
            format: FORMAT_VERSION,
            name: "test".into(),
            seed: 1,
            duration_ns: 1000,
            warmup_ns: 0,
            links: vec![],
        }
    }

    fn event(seq: u64) -> EventRecord {
        EventRecord {
            seq,
            t_ns: seq * 10,
            kind: (seq % 4) as u8,
            digest: seq.wrapping_mul(0x517c_c1b7_2722_0a95),
        }
    }

    fn write_log(path: &Path, n: u64, with_end: bool) {
        let mut w = LogWriter::create(path).unwrap();
        w.write(&Record::Meta(meta())).unwrap();
        for s in 0..n {
            w.write(&Record::Event(event(s))).unwrap();
        }
        if with_end {
            w.write(&Record::End(EndRecord {
                events: n,
                digest: event(n - 1).digest,
            }))
            .unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn identical_runs_report_clean() {
        let dir = std::env::temp_dir().join("flightrec-replay-clean");
        let path = dir.join("run.flight");
        write_log(&path, 20, true);
        let mut c = ReplayChecker::open(&path).unwrap();
        assert_eq!(c.meta().seed, 1);
        for s in 0..20 {
            c.check_event(event(s));
        }
        let report = c.finish(20, event(19).digest);
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.checked, 20);
        assert!(report.render().contains("0 divergences"));
    }

    #[test]
    fn digest_flip_locates_first_divergence() {
        let dir = std::env::temp_dir().join("flightrec-replay-flip");
        let path = dir.join("run.flight");
        write_log(&path, 20, true);
        let mut c = ReplayChecker::open(&path).unwrap();
        for s in 0..20 {
            let mut e = event(s);
            if s >= 7 {
                e.digest ^= 1; // chained digests: everything from 7 differs
            }
            c.check_event(e);
        }
        let report = c.finish(20, event(19).digest ^ 1);
        let d = report.divergence.expect("diverges");
        assert_eq!(d.index, 7);
        assert_eq!(d.t_ns, 70);
        assert!(d.reason.contains("digest mismatch"));
        assert_eq!(d.before.len(), 4);
        assert_eq!(d.before.last().unwrap().seq, 6);
        assert!(!d.expected.is_empty());
        assert!(!d.actual.is_empty());
    }

    #[test]
    fn short_live_run_is_divergence() {
        let dir = std::env::temp_dir().join("flightrec-replay-short");
        let path = dir.join("run.flight");
        write_log(&path, 20, true);
        let mut c = ReplayChecker::open(&path).unwrap();
        for s in 0..10 {
            c.check_event(event(s));
        }
        let report = c.finish(10, event(9).digest);
        let d = report.divergence.expect("diverges");
        assert!(d.reason.contains("live run ended"), "{}", d.reason);
        assert_eq!(d.index, 10);
    }

    #[test]
    fn missing_end_frame_is_divergence() {
        let dir = std::env::temp_dir().join("flightrec-replay-noend");
        let path = dir.join("run.flight");
        write_log(&path, 5, false);
        let mut c = ReplayChecker::open(&path).unwrap();
        for s in 0..5 {
            c.check_event(event(s));
        }
        let report = c.finish(5, event(4).digest);
        let d = report.divergence.expect("diverges");
        assert!(d.reason.contains("no End frame"), "{}", d.reason);
    }
}
