//! The live capture side: a thread-safe [`FlightRecorder`] that the
//! simulation wires into its engine loop (event digests), its links
//! (packet taps) and its sidecars (decision sink).
//!
//! The recorder serialises everything through one internal lock into a
//! buffered append-only [`LogWriter`]. I/O errors never panic the hot
//! path: the first error is latched and surfaced by
//! [`FlightRecorder::finish`].

use crate::log::LogWriter;
use crate::record::{
    AnomalyRecord, DecisionKind, DecisionRecord, EndRecord, EventRecord, FaultRecord, FluidRecord,
    MetaInfo, MsgBindRecord, PacketRecord, Record, NO_POD,
};
use meshlayer_http::StatusCode;
use meshlayer_mesh::{Decision, DecisionSink};
use meshlayer_netsim::{PacketKind, PacketTap, TapEvent};
use meshlayer_simcore::SimTime;
use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::Path;
use std::sync::Arc;

/// Which packets the taps should keep.
#[derive(Clone, Debug, Default)]
pub struct CaptureFilter {
    /// Record pure acks? Default `false`: acks roughly double log volume
    /// and the data-segment records already pin down queue behaviour.
    pub include_acks: bool,
    /// Restrict capture to these link ids (`None` = every tapped link).
    pub links: Option<Vec<u32>>,
}

impl CaptureFilter {
    fn admits(&self, link: u32, kind: PacketKind) -> bool {
        if !self.include_acks && kind == PacketKind::Ack {
            return false;
        }
        match &self.links {
            Some(ids) => ids.contains(&link),
            None => true,
        }
    }
}

/// Counters of what a capture wrote, returned by [`FlightRecorder::finish`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CaptureCounts {
    /// Engine event records written.
    pub events: u64,
    /// Packet records written (post-filter).
    pub packets: u64,
    /// Decision records written.
    pub decisions: u64,
    /// Message-bind records written.
    pub binds: u64,
    /// Anomaly records written.
    pub anomalies: u64,
    /// Fault records written.
    pub faults: u64,
    /// Fluid-plane re-solve records written.
    pub fluids: u64,
}

struct Inner {
    writer: Option<LogWriter<BufWriter<File>>>,
    filter: CaptureFilter,
    error: Option<io::Error>,
    counts: CaptureCounts,
}

impl Inner {
    fn write(&mut self, rec: &Record) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.write(rec) {
                self.error = Some(e);
            }
        }
    }
}

/// A live flight-recorder capture writing one log file.
///
/// One instance serves all three streams (events, packets, decisions)
/// so the resulting log is a single totally-ordered file that offline
/// tools can merge-sort by simulated time without multi-file joins.
pub struct FlightRecorder {
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// Create a recorder writing to `path` (parent dirs are created).
    pub fn create(path: &Path) -> io::Result<Arc<FlightRecorder>> {
        Ok(Arc::new(FlightRecorder {
            inner: Mutex::new(Inner {
                writer: Some(LogWriter::create(path)?),
                filter: CaptureFilter::default(),
                error: None,
                counts: CaptureCounts::default(),
            }),
        }))
    }

    /// Replace the packet filter (call before the run starts).
    pub fn set_filter(&self, filter: CaptureFilter) {
        self.inner.lock().filter = filter;
    }

    /// Write the run-identity frame. Must be the first record written.
    pub fn record_meta(&self, meta: &MetaInfo) {
        self.inner.lock().write(&Record::Meta(meta.clone()));
    }

    /// Record one engine event pop with its running digest.
    pub fn record_event(&self, seq: u64, t_ns: u64, kind: u8, digest: u64) {
        let mut g = self.inner.lock();
        g.write(&Record::Event(EventRecord {
            seq,
            t_ns,
            kind,
            digest,
        }));
        g.counts.events += 1;
    }

    /// Record a message-id ↔ RPC-attempt binding.
    #[allow(clippy::too_many_arguments)]
    pub fn record_msg_bind(
        &self,
        now: SimTime,
        msg: u64,
        conn: u64,
        rpc: u64,
        attempt: u32,
        dir: u8,
        request_id: &str,
    ) {
        let mut g = self.inner.lock();
        g.write(&Record::MsgBind(MsgBindRecord {
            t_ns: now.as_nanos(),
            msg,
            conn,
            rpc,
            attempt,
            dir,
            request_id: request_id.to_string(),
        }));
        g.counts.binds += 1;
    }

    /// Record a request entering the mesh (request-id minted at ingress).
    pub fn record_ingress(&self, pod: &str, now: SimTime, request_id: &str, trace: u64) {
        self.push_decision(DecisionRecord {
            t_ns: now.as_nanos(),
            kind: DecisionKind::Ingress.code(),
            trace,
            chosen: NO_POD,
            pod: pod.to_string(),
            request_id: request_id.to_string(),
            cluster: String::new(),
            detail: String::new(),
        });
    }

    /// Record a root request completing with its final status.
    pub fn record_root_done(
        &self,
        pod: &str,
        now: SimTime,
        request_id: &str,
        status: StatusCode,
        latency_ns: u64,
    ) {
        self.push_decision(DecisionRecord {
            t_ns: now.as_nanos(),
            kind: DecisionKind::RootDone.code(),
            trace: 0,
            chosen: NO_POD,
            pod: pod.to_string(),
            request_id: request_id.to_string(),
            cluster: String::new(),
            detail: format!("status={} latency_ns={}", status.0, latency_ns),
        });
    }

    /// Record a policy-plane snapshot being applied at one layer. The
    /// snapshot `version` rides in the `trace` field (both are `u64`
    /// correlation keys) and the layer label in `cluster`, so the frame
    /// reuses the fixed decision layout. `pod` is the applying sidecar's
    /// pod, or a control-plane label for fleet-wide layers.
    pub fn record_policy_apply(
        &self,
        pod: &str,
        now: SimTime,
        version: u64,
        layer: &str,
        detail: &str,
    ) {
        self.push_decision(DecisionRecord {
            t_ns: now.as_nanos(),
            kind: DecisionKind::PolicyApply.code(),
            trace: version,
            chosen: NO_POD,
            pod: pod.to_string(),
            request_id: String::new(),
            cluster: layer.to_string(),
            detail: detail.to_string(),
        });
    }

    /// Record one telemetry anomaly the online detector flagged.
    #[allow(clippy::too_many_arguments)]
    pub fn record_anomaly(
        &self,
        now: SimTime,
        kind: u8,
        direction: i8,
        subject: &str,
        value: f64,
        baseline: f64,
        detail: &str,
    ) {
        let mut g = self.inner.lock();
        g.write(&Record::Anomaly(AnomalyRecord {
            t_ns: now.as_nanos(),
            kind,
            direction,
            subject: subject.to_string(),
            value_bits: value.to_bits(),
            baseline_bits: baseline.to_bits(),
            detail: detail.to_string(),
        }));
        g.counts.anomalies += 1;
    }

    /// Record one chaos-plane fault injection (`phase` 0) or clear
    /// (`phase` 1).
    pub fn record_fault(
        &self,
        now: SimTime,
        fault: u32,
        phase: u8,
        kind: u8,
        subject: &str,
        detail: &str,
    ) {
        let mut g = self.inner.lock();
        g.write(&Record::Fault(FaultRecord {
            t_ns: now.as_nanos(),
            fault,
            phase,
            kind,
            subject: subject.to_string(),
            detail: detail.to_string(),
        }));
        g.counts.faults += 1;
    }

    /// Record one fluid-plane rate re-solve.
    #[allow(clippy::too_many_arguments)]
    pub fn record_fluid(
        &self,
        now: SimTime,
        cause: u8,
        flows: u32,
        demand_bps: u64,
        alloc_bps: u64,
        delivered_bytes: u64,
        dropped_bytes: u64,
    ) {
        let mut g = self.inner.lock();
        g.write(&Record::Fluid(FluidRecord {
            t_ns: now.as_nanos(),
            cause,
            flows,
            demand_bps,
            alloc_bps,
            delivered_bytes,
            dropped_bytes,
        }));
        g.counts.fluids += 1;
    }

    /// Write the final totals frame.
    pub fn record_end(&self, events: u64, digest: u64) {
        self.inner
            .lock()
            .write(&Record::End(EndRecord { events, digest }));
    }

    /// Flush the log. Returns the write counters, or the first I/O error
    /// encountered anywhere during capture.
    pub fn finish(&self) -> io::Result<CaptureCounts> {
        let mut g = self.inner.lock();
        if let Some(e) = g.error.take() {
            return Err(e);
        }
        if let Some(w) = g.writer.take() {
            w.finish()?;
        }
        Ok(g.counts)
    }

    fn push_decision(&self, rec: DecisionRecord) {
        let mut g = self.inner.lock();
        g.write(&Record::Decision(rec));
        g.counts.decisions += 1;
    }
}

impl PacketTap for FlightRecorder {
    fn on_packet(&self, ev: TapEvent<'_>) {
        let mut g = self.inner.lock();
        if !g.filter.admits(ev.link.0, ev.pkt.kind) {
            return;
        }
        let rec = PacketRecord {
            t_ns: ev.now.as_nanos(),
            link: ev.link.0,
            op: ev.op.code(),
            pkt: ev.pkt.id,
            conn: ev.pkt.conn,
            msg: ev.pkt.msg,
            band: ev.band.min(u8::MAX as usize) as u8,
            dscp: ev.pkt.dscp,
            kind: match ev.pkt.kind {
                PacketKind::Data => 0,
                PacketKind::Ack => 1,
            },
            wire: ev.pkt.wire_size(),
            qlen: ev.queue_pkts.min(u32::MAX as usize) as u32,
            qbytes: ev.queue_bytes,
        };
        g.write(&Record::Packet(rec));
        g.counts.packets += 1;
    }
}

impl DecisionSink for FlightRecorder {
    fn on_decision(&self, pod: &str, now: SimTime, decision: &Decision<'_>) {
        let t_ns = now.as_nanos();
        let pod = pod.to_string();
        let rec = match decision {
            Decision::Propagate {
                request_id,
                trace,
                priority,
            } => DecisionRecord {
                t_ns,
                kind: DecisionKind::Propagate.code(),
                trace: *trace,
                chosen: NO_POD,
                pod,
                request_id: request_id.to_string(),
                cluster: String::new(),
                detail: match priority {
                    Some(p) => format!("priority={p}"),
                    None => String::new(),
                },
            },
            Decision::Route {
                request_id,
                trace,
                cluster,
                rule,
                pod: chosen,
                candidates,
                healthy,
                lb,
                breaker,
            } => DecisionRecord {
                t_ns,
                kind: DecisionKind::Route.code(),
                trace: *trace,
                chosen: chosen.0,
                pod,
                request_id: request_id.to_string(),
                cluster: cluster.to_string(),
                detail: format!(
                    "rule={rule} lb={lb} breaker={breaker} candidates={candidates} healthy={healthy}"
                ),
            },
            Decision::FailFast {
                request_id,
                trace,
                cluster,
                status,
                reason,
            } => DecisionRecord {
                t_ns,
                kind: DecisionKind::FailFast.code(),
                trace: *trace,
                chosen: NO_POD,
                pod,
                request_id: request_id.to_string(),
                cluster: cluster.unwrap_or("").to_string(),
                detail: format!("status={} reason={reason}", status.0),
            },
            Decision::Retry {
                request_id,
                cluster,
                attempt,
                failure,
                backoff_ns,
            } => DecisionRecord {
                t_ns,
                kind: DecisionKind::Retry.code(),
                trace: 0,
                chosen: NO_POD,
                pod,
                request_id: request_id.to_string(),
                cluster: cluster.to_string(),
                detail: format!("attempt={attempt} failure={failure} backoff_ns={backoff_ns}"),
            },
            Decision::RetryDenied {
                request_id,
                cluster,
                attempt,
                failure,
                reason,
            } => DecisionRecord {
                t_ns,
                kind: DecisionKind::RetryDenied.code(),
                trace: 0,
                chosen: NO_POD,
                pod,
                request_id: request_id.to_string(),
                cluster: cluster.to_string(),
                detail: format!("attempt={attempt} failure={failure} reason={reason}"),
            },
        };
        self.push_decision(rec);
    }
}
