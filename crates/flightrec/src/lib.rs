//! # meshlayer-flightrec
//!
//! Flight recorder for the simulation: deterministic event/packet/
//! decision capture with replay and divergence detection.
//!
//! The simulator is a deterministic discrete-event system — a run is a
//! pure function of (spec, seed). That property is only useful if it is
//! *checkable*: this crate records a run into one append-only binary
//! log and can later re-drive the same configuration, cross-checking a
//! chained per-event digest so the **first** divergent event is located
//! exactly (sequence number and simulated time), with before/after
//! context. On top of the same log it offers packet-level capture of
//! tapped links (enqueue/dequeue/drop with queue depths) and a
//! structured log of every sidecar decision (routing, retries, priority
//! propagation), all correlated by `x-request-id` so a single request's
//! life can be dumped as one merged timeline.
//!
//! Structure:
//!
//! * [`record`] — the nine record types and their binary encoding;
//! * [`log`] — checksummed framing, append-only writer / streaming reader;
//! * [`digest`] — chained FNV-1a hashing used for digests and checksums;
//! * [`capture`] — the live [`FlightRecorder`] (implements the netsim
//!   [`PacketTap`](meshlayer_netsim::PacketTap) and mesh
//!   [`DecisionSink`](meshlayer_mesh::DecisionSink) traits);
//! * [`replay`] — the [`ReplayChecker`] and divergence reporting;
//! * [`explore`] — offline loading and per-request timeline dumps.
//!
//! The engine-side wiring (what exactly is folded into the digest, and
//! where taps and sinks attach) lives in `meshlayer-core`; this crate
//! deliberately knows nothing about the engine's event enum beyond an
//! opaque `u8` kind.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod digest;
pub mod explore;
pub mod log;
pub mod record;
pub mod replay;

pub use capture::{CaptureCounts, CaptureFilter, FlightRecorder};
pub use explore::FlightLog;
pub use log::{FrameError, LogReader, LogWriter};
pub use record::{
    AnomalyRecord, DecisionKind, DecisionRecord, EndRecord, EventRecord, FaultRecord, FluidRecord,
    MetaInfo, MsgBindRecord, PacketRecord, Record, FORMAT_VERSION, MAGIC, NO_POD,
};
pub use replay::{Divergence, ReplayChecker, ReplayReport};
