//! Append-only log framing: magic header, checksummed frames.
//!
//! File layout:
//!
//! ```text
//! +----------+ +-------------------------------+ +-----
//! | FLTREC01 | | tag u8 | len u32 | payload    | | ...
//! +----------+ |        |         | check u32  | |
//!              +-------------------------------+ +-----
//! ```
//!
//! `check` is FNV-1a 64 of `tag || payload` truncated to 32 bits (see
//! [`crate::digest::frame_check`]); it detects torn writes and bit
//! flips, turning file corruption into a *located* replay divergence
//! instead of garbage decode. `len` covers the payload only. Frames are
//! written append-only and never rewritten, so a crashed run leaves a
//! valid prefix.

use crate::digest::frame_check;
use crate::record::{DecodeError, Record, MAGIC};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Upper bound on a single frame payload; anything larger is corruption.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// A structural error while reading a log.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file ended in the middle of a frame.
    Truncated {
        /// Byte offset of the frame that was cut short.
        offset: u64,
    },
    /// A frame's checksum did not match its contents.
    BadChecksum {
        /// Byte offset of the corrupt frame.
        offset: u64,
    },
    /// A frame declared an implausibly large payload.
    Oversize {
        /// Byte offset of the frame.
        offset: u64,
        /// Declared payload length.
        len: u32,
    },
    /// The frame passed its checksum but the payload would not decode.
    Decode {
        /// Byte offset of the frame.
        offset: u64,
        /// Decode failure detail.
        err: DecodeError,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadMagic => write!(f, "not a flight-recorder log (bad magic)"),
            FrameError::Truncated { offset } => {
                write!(f, "log truncated mid-frame at byte {offset}")
            }
            FrameError::BadChecksum { offset } => {
                write!(f, "frame checksum mismatch at byte {offset}")
            }
            FrameError::Oversize { offset, len } => {
                write!(f, "frame at byte {offset} declares oversize payload {len}")
            }
            FrameError::Decode { offset, err } => {
                write!(f, "frame at byte {offset} undecodable: {err}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Streaming frame writer. Writes [`MAGIC`] on construction.
pub struct LogWriter<W: Write> {
    w: W,
    frames: u64,
}

impl LogWriter<BufWriter<File>> {
    /// Create (truncate) a log file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        LogWriter::new(BufWriter::new(File::create(path)?))
    }
}

impl<W: Write> LogWriter<W> {
    /// Wrap a sink, writing the magic header immediately.
    pub fn new(mut w: W) -> io::Result<Self> {
        w.write_all(MAGIC)?;
        Ok(LogWriter { w, frames: 0 })
    }

    /// Append one record as a checksummed frame.
    pub fn write(&mut self, rec: &Record) -> io::Result<()> {
        let payload = rec.encode();
        let tag = rec.tag();
        let mut body = Vec::with_capacity(payload.len() + 1);
        body.push(tag);
        body.extend_from_slice(&payload);
        let check = frame_check(&body);
        self.w.write_all(&[tag])?;
        self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.w.write_all(&payload)?;
        self.w.write_all(&check.to_le_bytes())?;
        self.frames += 1;
        Ok(())
    }

    /// Number of frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Streaming frame reader. Verifies [`MAGIC`] on construction.
pub struct LogReader<R: Read> {
    r: R,
    pos: u64,
}

impl LogReader<BufReader<File>> {
    /// Open a log file for reading.
    pub fn open(path: &Path) -> Result<Self, FrameError> {
        LogReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> LogReader<R> {
    /// Wrap a source, consuming and checking the magic header.
    pub fn new(mut r: R) -> Result<Self, FrameError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(|_| FrameError::BadMagic)?;
        if &magic != MAGIC {
            return Err(FrameError::BadMagic);
        }
        Ok(LogReader { r, pos: 8 })
    }

    /// Byte offset where the next frame starts.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Read the next frame. `Ok(None)` at a clean end-of-file; a frame
    /// boundary error otherwise.
    ///
    /// Returns the frame's start offset alongside the record so callers
    /// can report (or deliberately corrupt, in tests) exact positions.
    // Not `Iterator`: the `Result<Option<..>>` shape keeps `?` usable on
    // frame errors at every call site.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(u64, Record)>, FrameError> {
        let offset = self.pos;
        let mut tag = [0u8; 1];
        match self.r.read(&mut tag)? {
            0 => return Ok(None),
            1 => {}
            _ => unreachable!("read of 1-byte buffer"),
        }
        let mut len_bytes = [0u8; 4];
        self.r
            .read_exact(&mut len_bytes)
            .map_err(|_| FrameError::Truncated { offset })?;
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversize { offset, len });
        }
        let mut body = vec![0u8; len as usize + 1];
        body[0] = tag[0];
        self.r
            .read_exact(&mut body[1..])
            .map_err(|_| FrameError::Truncated { offset })?;
        let mut check_bytes = [0u8; 4];
        self.r
            .read_exact(&mut check_bytes)
            .map_err(|_| FrameError::Truncated { offset })?;
        if frame_check(&body) != u32::from_le_bytes(check_bytes) {
            return Err(FrameError::BadChecksum { offset });
        }
        let rec =
            Record::decode(tag[0], &body[1..]).map_err(|err| FrameError::Decode { offset, err })?;
        self.pos += 1 + 4 + len as u64 + 4;
        Ok(Some((offset, rec)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EndRecord, EventRecord};

    fn sample_log() -> Vec<u8> {
        let mut w = LogWriter::new(Vec::new()).unwrap();
        for seq in 0..5u64 {
            w.write(&Record::Event(EventRecord {
                seq,
                t_ns: seq * 10,
                kind: (seq % 3) as u8,
                digest: seq.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }))
            .unwrap();
        }
        w.write(&Record::End(EndRecord {
            events: 5,
            digest: 4u64.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }))
        .unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn write_read_round_trip() {
        let bytes = sample_log();
        let mut r = LogReader::new(&bytes[..]).unwrap();
        let mut events = 0;
        while let Some((_, rec)) = r.next().unwrap() {
            match rec {
                Record::Event(e) => {
                    assert_eq!(e.seq, events);
                    events += 1;
                }
                Record::End(e) => assert_eq!(e.events, 5),
                other => panic!("unexpected record {other:?}"),
            }
        }
        assert_eq!(events, 5);
    }

    #[test]
    fn bad_magic_detected() {
        assert!(matches!(
            LogReader::new(&b"NOTALOG0"[..]),
            Err(FrameError::BadMagic)
        ));
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let mut bytes = sample_log();
        // Corrupt a byte inside the third frame's payload.
        let mut r = LogReader::new(&bytes[..]).unwrap();
        r.next().unwrap();
        r.next().unwrap();
        let offset = r.position() as usize;
        bytes[offset + 7] ^= 0xff;
        let mut r = LogReader::new(&bytes[..]).unwrap();
        r.next().unwrap();
        r.next().unwrap();
        assert!(matches!(
            r.next(),
            Err(FrameError::BadChecksum { offset: o }) if o as usize == offset
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_log();
        let cut = &bytes[..bytes.len() - 3];
        let mut r = LogReader::new(cut).unwrap();
        let mut err = None;
        loop {
            match r.next() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(FrameError::Truncated { .. })));
    }
}
