//! Offline exploration of a capture: load a whole log into memory and
//! dump a request's full life — sidecar decisions, message bindings and
//! per-packet queue operations — merged into one timeline ordered by
//! simulated time.
//!
//! The join works because packets carry the transport message id and
//! [`MsgBindRecord`]s bind message ids to `x-request-id`s: given a
//! request id we collect its message ids, then every packet record
//! whose `msg` is in that set belongs to the request.

use crate::log::{FrameError, LogReader};
use crate::record::{
    AnomalyRecord, DecisionKind, DecisionRecord, EndRecord, EventRecord, FaultRecord, FluidRecord,
    MetaInfo, MsgBindRecord, PacketRecord, Record, NO_POD,
};
use meshlayer_netsim::TapOp;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// A fully-loaded capture, records split per stream.
#[derive(Debug, Default)]
pub struct FlightLog {
    /// Run identity, if the log carried one.
    pub meta: Option<MetaInfo>,
    /// Engine event records in pop order.
    pub events: Vec<EventRecord>,
    /// Packet queue operations in capture order.
    pub packets: Vec<PacketRecord>,
    /// Sidecar decisions in capture order.
    pub decisions: Vec<DecisionRecord>,
    /// Message-id bindings in capture order.
    pub binds: Vec<MsgBindRecord>,
    /// Telemetry anomalies in detection order.
    pub anomalies: Vec<AnomalyRecord>,
    /// Chaos-plane fault injections/clears in injection order.
    pub faults: Vec<FaultRecord>,
    /// Fluid-plane rate re-solves in commit order.
    pub fluids: Vec<FluidRecord>,
    /// Final totals frame, if the capture completed.
    pub end: Option<EndRecord>,
}

impl FlightLog {
    /// Read an entire log file into memory.
    pub fn load(path: &Path) -> Result<FlightLog, FrameError> {
        let mut reader = LogReader::open(path)?;
        let mut log = FlightLog::default();
        while let Some((_, rec)) = reader.next()? {
            match rec {
                Record::Meta(m) => log.meta = Some(m),
                Record::Event(e) => log.events.push(e),
                Record::Packet(p) => log.packets.push(p),
                Record::Decision(d) => log.decisions.push(d),
                Record::MsgBind(b) => log.binds.push(b),
                Record::Anomaly(a) => log.anomalies.push(a),
                Record::Fault(f) => log.faults.push(f),
                Record::Fluid(f) => log.fluids.push(f),
                Record::End(e) => log.end = Some(e),
            }
        }
        Ok(log)
    }

    /// Human label for a link id, from the meta table.
    pub fn link_name(&self, link: u32) -> String {
        self.meta
            .as_ref()
            .and_then(|m| m.links.iter().find(|(id, _)| *id == link))
            .map(|(_, name)| name.clone())
            .unwrap_or_else(|| format!("link{link}"))
    }

    /// Distinct request ids seen in the decision and bind streams,
    /// in order of first appearance.
    pub fn request_ids(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for id in self
            .decisions
            .iter()
            .map(|d| d.request_id.as_str())
            .chain(self.binds.iter().map(|b| b.request_id.as_str()))
        {
            if !id.is_empty() && seen.insert(id.to_string()) {
                out.push(id.to_string());
            }
        }
        out
    }

    /// One-paragraph capture summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if let Some(m) = &self.meta {
            let _ = writeln!(
                out,
                "capture: scenario={} seed={} duration={:.3}s warmup={:.3}s links={}",
                m.name,
                m.seed,
                m.duration_ns as f64 / 1e9,
                m.warmup_ns as f64 / 1e9,
                m.links.len()
            );
        }
        let _ = writeln!(
            out,
            "records: {} events, {} packets, {} decisions, {} msg-binds, {} anomalies, {} faults, {} fluid",
            self.events.len(),
            self.packets.len(),
            self.decisions.len(),
            self.binds.len(),
            self.anomalies.len(),
            self.faults.len(),
            self.fluids.len()
        );
        match &self.end {
            Some(e) => {
                let _ = writeln!(
                    out,
                    "end: {} events total, final digest {:016x}",
                    e.events, e.digest
                );
            }
            None => {
                let _ = writeln!(out, "end: MISSING (capture did not complete cleanly)");
            }
        }
        out
    }

    /// Merge every record correlated with `request_id` into a timeline.
    ///
    /// Returns `None` when the request id appears nowhere in the log.
    pub fn dump_request(&self, request_id: &str) -> Option<String> {
        let msgs: BTreeSet<u64> = self
            .binds
            .iter()
            .filter(|b| b.request_id == request_id)
            .map(|b| b.msg)
            .collect();
        // (t_ns, stream-rank, line): rank keeps decision lines ahead of
        // the packets they caused when times tie.
        let mut lines: Vec<(u64, u8, String)> = Vec::new();
        for d in self.decisions.iter().filter(|d| d.request_id == request_id) {
            lines.push((d.t_ns, 0, self.fmt_decision(d)));
        }
        for b in self.binds.iter().filter(|b| b.request_id == request_id) {
            let dir = if b.dir == 0 { "request" } else { "response" };
            lines.push((
                b.t_ns,
                1,
                format!(
                    "msg   {} msg={} conn={} rpc={} attempt={}",
                    dir, b.msg, b.conn, b.rpc, b.attempt
                ),
            ));
        }
        for p in self.packets.iter().filter(|p| msgs.contains(&p.msg)) {
            let op = TapOp::from_code(p.op).map(|o| o.label()).unwrap_or("?");
            lines.push((
                p.t_ns,
                2,
                format!(
                    "pkt   {:<4} {} pkt={} band={} dscp={} wire={}B queue={}p/{}B",
                    op,
                    self.link_name(p.link),
                    p.pkt,
                    p.band,
                    p.dscp,
                    p.wire,
                    p.qlen,
                    p.qbytes
                ),
            ));
        }
        if lines.is_empty() {
            return None;
        }
        lines.sort_by_key(|l| (l.0, l.1));
        let mut out = String::new();
        let _ = writeln!(out, "request {request_id}: {} records", lines.len());
        for (t_ns, _, line) in lines {
            let _ = writeln!(out, "  t={:<14.6} {}", t_ns as f64 / 1e9, line);
        }
        Some(out)
    }

    fn fmt_decision(&self, d: &DecisionRecord) -> String {
        let kind = DecisionKind::from_code(d.kind)
            .map(|k| k.label())
            .unwrap_or("?");
        let mut line = format!("mesh  {:<12} pod={}", kind, d.pod);
        if !d.cluster.is_empty() {
            let _ = write!(line, " cluster={}", d.cluster);
        }
        if d.chosen != NO_POD {
            let _ = write!(line, " chose=pod{}", d.chosen);
        }
        if d.trace != 0 {
            let _ = write!(line, " trace={:x}", d.trace);
        }
        if !d.detail.is_empty() {
            let _ = write!(line, " {}", d.detail);
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogWriter;
    use crate::record::FORMAT_VERSION;

    #[test]
    fn load_and_dump_request_timeline() {
        let path = std::env::temp_dir()
            .join("flightrec-explore")
            .join("run.flight");
        let mut w = LogWriter::create(&path).unwrap();
        w.write(&Record::Meta(MetaInfo {
            format: FORMAT_VERSION,
            name: "test".into(),
            seed: 9,
            duration_ns: 1_000_000_000,
            warmup_ns: 0,
            links: vec![(3, "client->frontend".into())],
        }))
        .unwrap();
        w.write(&Record::Decision(DecisionRecord {
            t_ns: 100,
            kind: DecisionKind::Ingress.code(),
            trace: 0xab,
            chosen: NO_POD,
            pod: "frontend-0".into(),
            request_id: "rid-1".into(),
            cluster: String::new(),
            detail: String::new(),
        }))
        .unwrap();
        w.write(&Record::MsgBind(MsgBindRecord {
            t_ns: 150,
            msg: 42,
            conn: 7,
            rpc: 1,
            attempt: 0,
            dir: 0,
            request_id: "rid-1".into(),
        }))
        .unwrap();
        w.write(&Record::Packet(PacketRecord {
            t_ns: 200,
            link: 3,
            op: 0,
            pkt: 5,
            conn: 7,
            msg: 42,
            band: 0,
            dscp: 46,
            kind: 0,
            wire: 1514,
            qlen: 1,
            qbytes: 1514,
        }))
        .unwrap();
        // A packet for a different message must not appear in the dump.
        w.write(&Record::Packet(PacketRecord {
            t_ns: 210,
            link: 3,
            op: 0,
            pkt: 6,
            conn: 8,
            msg: 99,
            band: 0,
            dscp: 8,
            kind: 0,
            wire: 400,
            qlen: 2,
            qbytes: 1914,
        }))
        .unwrap();
        w.write(&Record::End(EndRecord {
            events: 0,
            digest: 0,
        }))
        .unwrap();
        w.finish().unwrap();

        let log = FlightLog::load(&path).unwrap();
        assert_eq!(log.request_ids(), vec!["rid-1".to_string()]);
        assert!(log.summary().contains("1 decisions"));
        let dump = log.dump_request("rid-1").expect("request found");
        assert!(dump.contains("ingress"), "{dump}");
        assert!(dump.contains("client->frontend"), "{dump}");
        assert!(dump.contains("pkt=5"), "{dump}");
        assert!(!dump.contains("pkt=6"), "{dump}");
        assert!(log.dump_request("nope").is_none());
    }
}
