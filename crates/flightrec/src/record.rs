//! The capture record types and their binary wire encoding.
//!
//! A flight-recorder log is a stream of self-framing records (see
//! [`crate::log`] for the framing). Nine record kinds exist:
//!
//! | tag | record     | cadence                                      |
//! |-----|------------|----------------------------------------------|
//! | 1   | `Meta`     | once, first frame — run identity (JSON)      |
//! | 2   | `Event`    | every engine event pop — seq/time/digest     |
//! | 3   | `Packet`   | every tapped enqueue/dequeue/drop            |
//! | 4   | `Decision` | every sidecar routing/retry/priority choice  |
//! | 5   | `MsgBind`  | message-id ↔ RPC/request-id correlation      |
//! | 6   | `End`      | once, last frame — totals + final digest     |
//! | 7   | `Anomaly`  | every telemetry anomaly the detector flags   |
//! | 8   | `Fault`    | every chaos-plane fault injection and clear  |
//! | 9   | `Fluid`    | every fluid-plane rate re-solve              |
//!
//! All multi-byte integers are little-endian. Strings are a `u16`
//! length followed by UTF-8 bytes. The `Meta` payload is JSON so the
//! run identity stays greppable and future-extensible; everything on
//! the hot path is fixed-layout binary.

use serde::{Deserialize, Serialize};

/// File magic: identifies a flight-recorder log and its framing version.
pub const MAGIC: &[u8; 8] = b"FLTREC01";

/// Record-format version stamped into [`MetaInfo::format`].
pub const FORMAT_VERSION: u32 = 1;

/// Frame tag for [`Record::Meta`].
pub const TAG_META: u8 = 1;
/// Frame tag for [`Record::Event`].
pub const TAG_EVENT: u8 = 2;
/// Frame tag for [`Record::Packet`].
pub const TAG_PACKET: u8 = 3;
/// Frame tag for [`Record::Decision`].
pub const TAG_DECISION: u8 = 4;
/// Frame tag for [`Record::MsgBind`].
pub const TAG_MSG_BIND: u8 = 5;
/// Frame tag for [`Record::End`].
pub const TAG_END: u8 = 6;
/// Frame tag for [`Record::Anomaly`].
pub const TAG_ANOMALY: u8 = 7;
/// Frame tag for [`Record::Fault`].
pub const TAG_FAULT: u8 = 8;
/// Frame tag for [`Record::Fluid`].
pub const TAG_FLUID: u8 = 9;

/// Sentinel for "no pod chosen" in [`DecisionRecord::chosen`].
pub const NO_POD: u32 = u32::MAX;

/// Run identity, written as the first frame of every log.
///
/// Replay cross-checks `seed` and `duration_ns` against the run it is
/// about to drive, so a log cannot silently be replayed against the
/// wrong configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaInfo {
    /// Record-format version ([`FORMAT_VERSION`] at write time).
    pub format: u32,
    /// Scenario name (e.g. `"elibrary"`).
    pub name: String,
    /// RNG seed the run was started with.
    pub seed: u64,
    /// Measured run duration in simulated nanoseconds.
    pub duration_ns: u64,
    /// Warmup prefix in simulated nanoseconds.
    pub warmup_ns: u64,
    /// Link-id → human label (`"src->dst"`) table for offline decoding.
    pub links: Vec<(u32, String)>,
}

/// One engine event pop: sequence number, sim time, kind, running digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// 0-based position of this event in the pop order.
    pub seq: u64,
    /// Simulated time of the pop, nanoseconds.
    pub t_ns: u64,
    /// Event-kind discriminant (engine-defined, see `meshlayer-core`).
    pub kind: u8,
    /// Chained FNV-1a digest of the run *after* folding this event.
    pub digest: u64,
}

/// One packet-level queue operation on a tapped link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketRecord {
    /// Simulated time, nanoseconds.
    pub t_ns: u64,
    /// Link the operation happened on.
    pub link: u32,
    /// Operation code: 0 enqueue, 1 dequeue, 2 drop (see `netsim::TapOp`).
    pub op: u8,
    /// Packet id.
    pub pkt: u64,
    /// Connection id the packet belongs to.
    pub conn: u64,
    /// Application message id carried (0 = none); joins with [`MsgBindRecord`].
    pub msg: u64,
    /// Qdisc band the packet was classified into.
    pub band: u8,
    /// DSCP codepoint on the packet.
    pub dscp: u8,
    /// Packet kind: 0 data, 1 ack.
    pub kind: u8,
    /// Wire size in bytes.
    pub wire: u32,
    /// Queue depth in packets after the operation.
    pub qlen: u32,
    /// Queue depth in bytes after the operation.
    pub qbytes: u64,
}

/// Decision-kind discriminants for [`DecisionRecord::kind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum DecisionKind {
    /// Request entered the mesh at an ingress sidecar (request-id minted).
    Ingress = 0,
    /// Priority/trace headers propagated onto a child request.
    Propagate = 1,
    /// Route resolved and a replica chosen.
    Route = 2,
    /// Request failed fast at the sidecar (no route / breaker / no healthy).
    FailFast = 3,
    /// Retry admitted, with backoff.
    Retry = 4,
    /// Retry denied (policy or budget).
    RetryDenied = 5,
    /// Root request completed (final status known).
    RootDone = 6,
    /// A policy-plane snapshot version was applied at one layer.
    PolicyApply = 7,
}

impl DecisionKind {
    /// Wire discriminant.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`DecisionKind::code`].
    pub fn from_code(code: u8) -> Option<DecisionKind> {
        Some(match code {
            0 => DecisionKind::Ingress,
            1 => DecisionKind::Propagate,
            2 => DecisionKind::Route,
            3 => DecisionKind::FailFast,
            4 => DecisionKind::Retry,
            5 => DecisionKind::RetryDenied,
            6 => DecisionKind::RootDone,
            7 => DecisionKind::PolicyApply,
            _ => return None,
        })
    }

    /// Short human label for timeline dumps.
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::Ingress => "ingress",
            DecisionKind::Propagate => "propagate",
            DecisionKind::Route => "route",
            DecisionKind::FailFast => "fail-fast",
            DecisionKind::Retry => "retry",
            DecisionKind::RetryDenied => "retry-denied",
            DecisionKind::RootDone => "root-done",
            DecisionKind::PolicyApply => "policy-apply",
        }
    }
}

/// One sidecar decision with the inputs that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Simulated time, nanoseconds.
    pub t_ns: u64,
    /// [`DecisionKind`] discriminant.
    pub kind: u8,
    /// B3 trace id (0 if unsampled/unknown).
    pub trace: u64,
    /// Chosen replica pod id, or [`NO_POD`] when none was chosen.
    pub chosen: u32,
    /// Name of the pod whose sidecar made the decision.
    pub pod: String,
    /// `x-request-id` correlation key (may be empty for uncorrelated requests).
    pub request_id: String,
    /// Upstream cluster the decision concerned (empty when not applicable).
    pub cluster: String,
    /// Kind-specific detail: matched rule, candidate/healthy counts, lb
    /// policy, breaker state, failure class, backoff, status, reason.
    pub detail: String,
}

/// Correlation record binding a transport message id to its RPC attempt.
///
/// Packets carry only the message id; this record is what lets the
/// explorer join packet captures to `x-request-id`s and Zipkin spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsgBindRecord {
    /// Simulated time the message was allocated, nanoseconds.
    pub t_ns: u64,
    /// Transport message id (as seen in [`PacketRecord::msg`]).
    pub msg: u64,
    /// Connection the message was sent on.
    pub conn: u64,
    /// RPC id the message belongs to.
    pub rpc: u64,
    /// 0-based attempt index within the RPC.
    pub attempt: u32,
    /// Direction: 0 request, 1 response.
    pub dir: u8,
    /// `x-request-id` of the request this message carries.
    pub request_id: String,
}

/// One anomaly flagged by the telemetry plane's online detector.
///
/// The f64 observation/baseline ride as IEEE-754 bit patterns so the
/// record stays fixed-layout and byte-exact across platforms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnomalyRecord {
    /// Simulated time of the scrape that flagged the anomaly, nanoseconds.
    pub t_ns: u64,
    /// Anomaly-kind discriminant (telemetry-defined: 0 latency shift,
    /// 1 error burst, 2 queue growth).
    pub kind: u8,
    /// Shift direction: 1 up, -1 down, 0 not directional.
    pub direction: i8,
    /// What the anomaly is about (class, or `metric/instance`).
    pub subject: String,
    /// Observed value, `f64::to_bits`.
    pub value_bits: u64,
    /// Baseline the observation was compared against, `f64::to_bits`.
    pub baseline_bits: u64,
    /// Human-readable explanation.
    pub detail: String,
}

/// One chaos-plane fault injection or clear.
///
/// Written whenever the fault-injection plane mutates the world, so a
/// capture is self-describing: the incident-timeline engine joins these
/// frames into its causal chain, and replay divergence can be localized
/// to "before or after fault N".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Simulated time of the injection/clear, nanoseconds.
    pub t_ns: u64,
    /// 0-based index of the fault in the run's `FaultScript`.
    pub fault: u32,
    /// Phase: 0 = inject, 1 = clear (restart/heal/re-up).
    pub phase: u8,
    /// Fault-kind discriminant (chaos-defined: 0 pod-crash, 1 link-flap,
    /// 2 partition, 3 gray-failure, 4 rollback).
    pub kind: u8,
    /// What the fault targets (`service/replica`, `service`, or `v<n>`).
    pub subject: String,
    /// Human-readable description of what was mutated.
    pub detail: String,
}

/// One fluid-plane re-solve: the piecewise-constant rate flows changed.
///
/// Written at every `FluidUpdate` event a recording run commits, so a
/// capture documents each step of the background-load staircase: how
/// many flows were live, how much of the aggregate demand the max-min
/// solver admitted, and the bytes settled for the window that just
/// closed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FluidRecord {
    /// Simulated time of the re-solve, nanoseconds.
    pub t_ns: u64,
    /// Why rates changed: 0 = initial solve, 1 = epoch tick, 2 =
    /// chaos-driven link change (engine-defined).
    pub cause: u8,
    /// Flows live after the re-solve.
    pub flows: u32,
    /// Aggregate offered demand of all flows, bits/second.
    pub demand_bps: u64,
    /// Aggregate admitted allocation after max-min fair sharing,
    /// bits/second.
    pub alloc_bps: u64,
    /// Bytes delivered across all flows in the window settled by this
    /// update.
    pub delivered_bytes: u64,
    /// Bytes dropped (demand the solver could not admit) in the settled
    /// window.
    pub dropped_bytes: u64,
}

/// Final frame: totals and the final chained digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EndRecord {
    /// Total events popped (and recorded) during the run.
    pub events: u64,
    /// Final chained digest after the last event.
    pub digest: u64,
}

/// Any record that can appear in a log.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// Run identity (first frame).
    Meta(MetaInfo),
    /// Engine event pop.
    Event(EventRecord),
    /// Packet queue operation.
    Packet(PacketRecord),
    /// Sidecar decision.
    Decision(DecisionRecord),
    /// Message-id correlation.
    MsgBind(MsgBindRecord),
    /// Run totals (last frame).
    End(EndRecord),
    /// Telemetry anomaly.
    Anomaly(AnomalyRecord),
    /// Chaos-plane fault injection/clear.
    Fault(FaultRecord),
    /// Fluid-plane rate re-solve.
    Fluid(FluidRecord),
}

/// Why a record payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Payload ended before the record's fixed fields were complete.
    Short,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The `Meta` JSON payload failed to parse.
    BadJson,
    /// Unknown frame tag.
    BadTag(u8),
    /// Payload had bytes left over after the record was fully decoded.
    Trailing,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Short => write!(f, "payload truncated"),
            DecodeError::BadUtf8 => write!(f, "string field not UTF-8"),
            DecodeError::BadJson => write!(f, "meta JSON unparsable"),
            DecodeError::BadTag(t) => write!(f, "unknown record tag {t}"),
            DecodeError::Trailing => write!(f, "trailing bytes after record"),
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, i: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.i + n > self.b.len() {
            return Err(DecodeError::Short);
        }
        let s = &self.b[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn done(&self) -> Result<(), DecodeError> {
        if self.i == self.b.len() {
            Ok(())
        } else {
            Err(DecodeError::Trailing)
        }
    }
}

impl Record {
    /// Frame tag for this record kind.
    pub fn tag(&self) -> u8 {
        match self {
            Record::Meta(_) => TAG_META,
            Record::Event(_) => TAG_EVENT,
            Record::Packet(_) => TAG_PACKET,
            Record::Decision(_) => TAG_DECISION,
            Record::MsgBind(_) => TAG_MSG_BIND,
            Record::End(_) => TAG_END,
            Record::Anomaly(_) => TAG_ANOMALY,
            Record::Fault(_) => TAG_FAULT,
            Record::Fluid(_) => TAG_FLUID,
        }
    }

    /// Encode the record payload (frame body without tag/len/check).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        match self {
            Record::Meta(m) => {
                // JSON keeps the run identity self-describing; this is a
                // once-per-log frame so compactness does not matter.
                out.extend_from_slice(
                    serde_json::to_string(m)
                        .expect("meta serializes")
                        .as_bytes(),
                );
            }
            Record::Event(e) => {
                out.extend_from_slice(&e.seq.to_le_bytes());
                out.extend_from_slice(&e.t_ns.to_le_bytes());
                out.push(e.kind);
                out.extend_from_slice(&e.digest.to_le_bytes());
            }
            Record::Packet(p) => {
                out.extend_from_slice(&p.t_ns.to_le_bytes());
                out.extend_from_slice(&p.link.to_le_bytes());
                out.push(p.op);
                out.extend_from_slice(&p.pkt.to_le_bytes());
                out.extend_from_slice(&p.conn.to_le_bytes());
                out.extend_from_slice(&p.msg.to_le_bytes());
                out.push(p.band);
                out.push(p.dscp);
                out.push(p.kind);
                out.extend_from_slice(&p.wire.to_le_bytes());
                out.extend_from_slice(&p.qlen.to_le_bytes());
                out.extend_from_slice(&p.qbytes.to_le_bytes());
            }
            Record::Decision(d) => {
                out.extend_from_slice(&d.t_ns.to_le_bytes());
                out.push(d.kind);
                out.extend_from_slice(&d.trace.to_le_bytes());
                out.extend_from_slice(&d.chosen.to_le_bytes());
                put_str(&mut out, &d.pod);
                put_str(&mut out, &d.request_id);
                put_str(&mut out, &d.cluster);
                put_str(&mut out, &d.detail);
            }
            Record::MsgBind(b) => {
                out.extend_from_slice(&b.t_ns.to_le_bytes());
                out.extend_from_slice(&b.msg.to_le_bytes());
                out.extend_from_slice(&b.conn.to_le_bytes());
                out.extend_from_slice(&b.rpc.to_le_bytes());
                out.extend_from_slice(&b.attempt.to_le_bytes());
                out.push(b.dir);
                put_str(&mut out, &b.request_id);
            }
            Record::End(e) => {
                out.extend_from_slice(&e.events.to_le_bytes());
                out.extend_from_slice(&e.digest.to_le_bytes());
            }
            Record::Anomaly(a) => {
                out.extend_from_slice(&a.t_ns.to_le_bytes());
                out.push(a.kind);
                out.push(a.direction as u8);
                out.extend_from_slice(&a.value_bits.to_le_bytes());
                out.extend_from_slice(&a.baseline_bits.to_le_bytes());
                put_str(&mut out, &a.subject);
                put_str(&mut out, &a.detail);
            }
            Record::Fault(fr) => {
                out.extend_from_slice(&fr.t_ns.to_le_bytes());
                out.extend_from_slice(&fr.fault.to_le_bytes());
                out.push(fr.phase);
                out.push(fr.kind);
                put_str(&mut out, &fr.subject);
                put_str(&mut out, &fr.detail);
            }
            Record::Fluid(fl) => {
                out.extend_from_slice(&fl.t_ns.to_le_bytes());
                out.push(fl.cause);
                out.extend_from_slice(&fl.flows.to_le_bytes());
                out.extend_from_slice(&fl.demand_bps.to_le_bytes());
                out.extend_from_slice(&fl.alloc_bps.to_le_bytes());
                out.extend_from_slice(&fl.delivered_bytes.to_le_bytes());
                out.extend_from_slice(&fl.dropped_bytes.to_le_bytes());
            }
        }
        out
    }

    /// Decode a record payload given its frame tag.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Record, DecodeError> {
        let mut c = Cur::new(payload);
        let rec = match tag {
            TAG_META => {
                let text = std::str::from_utf8(payload).map_err(|_| DecodeError::BadUtf8)?;
                let m: MetaInfo = serde_json::from_str(text).map_err(|_| DecodeError::BadJson)?;
                return Ok(Record::Meta(m));
            }
            TAG_EVENT => Record::Event(EventRecord {
                seq: c.u64()?,
                t_ns: c.u64()?,
                kind: c.u8()?,
                digest: c.u64()?,
            }),
            TAG_PACKET => Record::Packet(PacketRecord {
                t_ns: c.u64()?,
                link: c.u32()?,
                op: c.u8()?,
                pkt: c.u64()?,
                conn: c.u64()?,
                msg: c.u64()?,
                band: c.u8()?,
                dscp: c.u8()?,
                kind: c.u8()?,
                wire: c.u32()?,
                qlen: c.u32()?,
                qbytes: c.u64()?,
            }),
            TAG_DECISION => Record::Decision(DecisionRecord {
                t_ns: c.u64()?,
                kind: c.u8()?,
                trace: c.u64()?,
                chosen: c.u32()?,
                pod: c.str()?,
                request_id: c.str()?,
                cluster: c.str()?,
                detail: c.str()?,
            }),
            TAG_MSG_BIND => Record::MsgBind(MsgBindRecord {
                t_ns: c.u64()?,
                msg: c.u64()?,
                conn: c.u64()?,
                rpc: c.u64()?,
                attempt: c.u32()?,
                dir: c.u8()?,
                request_id: c.str()?,
            }),
            TAG_END => Record::End(EndRecord {
                events: c.u64()?,
                digest: c.u64()?,
            }),
            TAG_ANOMALY => Record::Anomaly(AnomalyRecord {
                t_ns: c.u64()?,
                kind: c.u8()?,
                direction: c.u8()? as i8,
                value_bits: c.u64()?,
                baseline_bits: c.u64()?,
                subject: c.str()?,
                detail: c.str()?,
            }),
            TAG_FAULT => Record::Fault(FaultRecord {
                t_ns: c.u64()?,
                fault: c.u32()?,
                phase: c.u8()?,
                kind: c.u8()?,
                subject: c.str()?,
                detail: c.str()?,
            }),
            TAG_FLUID => Record::Fluid(FluidRecord {
                t_ns: c.u64()?,
                cause: c.u8()?,
                flows: c.u32()?,
                demand_bps: c.u64()?,
                alloc_bps: c.u64()?,
                delivered_bytes: c.u64()?,
                dropped_bytes: c.u64()?,
            }),
            t => return Err(DecodeError::BadTag(t)),
        };
        c.done()?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: Record) {
        let payload = rec.encode();
        let back = Record::decode(rec.tag(), &payload).expect("decodes");
        assert_eq!(rec, back);
    }

    #[test]
    fn all_records_round_trip() {
        roundtrip(Record::Meta(MetaInfo {
            format: FORMAT_VERSION,
            name: "elibrary".into(),
            seed: 42,
            duration_ns: 8_000_000_000,
            warmup_ns: 1_000_000_000,
            links: vec![(0, "a->b".into()), (7, "b->a".into())],
        }));
        roundtrip(Record::Event(EventRecord {
            seq: 12345,
            t_ns: 987654321,
            kind: 9,
            digest: 0xdead_beef_cafe_f00d,
        }));
        roundtrip(Record::Packet(PacketRecord {
            t_ns: 1,
            link: 3,
            op: 2,
            pkt: 99,
            conn: 7,
            msg: 11,
            band: 1,
            dscp: 46,
            kind: 0,
            wire: 1566,
            qlen: 12,
            qbytes: 18000,
        }));
        roundtrip(Record::Decision(DecisionRecord {
            t_ns: 5,
            kind: DecisionKind::Route.code(),
            trace: 0xabc,
            chosen: 4,
            pod: "frontend-0".into(),
            request_id: "frontend-0-17".into(),
            cluster: "reviews".into(),
            detail: "rule=reviews/ lb=round-robin".into(),
        }));
        roundtrip(Record::MsgBind(MsgBindRecord {
            t_ns: 6,
            msg: 11,
            conn: 7,
            rpc: 3,
            attempt: 1,
            dir: 0,
            request_id: "frontend-0-17".into(),
        }));
        roundtrip(Record::End(EndRecord {
            events: 100,
            digest: 77,
        }));
        roundtrip(Record::Anomaly(AnomalyRecord {
            t_ns: 2_500_000_000,
            kind: 0,
            direction: -1,
            subject: "latency-sensitive".into(),
            value_bits: 23.4_f64.to_bits(),
            baseline_bits: 106.0_f64.to_bits(),
            detail: "p99 23.4ms vs baseline 106.0ms".into(),
        }));
        roundtrip(Record::Fault(FaultRecord {
            t_ns: 2_000_000_000,
            fault: 3,
            phase: 0,
            kind: 0,
            subject: "reviews/1".into(),
            detail: "pod reviews-2 crashed (restart in 2.000s)".into(),
        }));
        roundtrip(Record::Fluid(FluidRecord {
            t_ns: 3_500_000_000,
            cause: 1,
            flows: 154,
            demand_bps: 5_300_000_000,
            alloc_bps: 4_900_000_000,
            delivered_bytes: 306_250_000,
            dropped_bytes: 25_000_000,
        }));
    }

    #[test]
    fn short_payload_rejected() {
        let payload = Record::Event(EventRecord {
            seq: 1,
            t_ns: 2,
            kind: 3,
            digest: 4,
        })
        .encode();
        assert_eq!(
            Record::decode(TAG_EVENT, &payload[..payload.len() - 1]),
            Err(DecodeError::Short)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Record::End(EndRecord {
            events: 1,
            digest: 2,
        })
        .encode();
        payload.push(0);
        assert_eq!(
            Record::decode(TAG_END, &payload),
            Err(DecodeError::Trailing)
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(Record::decode(99, &[]), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn decision_kind_codes_round_trip() {
        for k in [
            DecisionKind::Ingress,
            DecisionKind::Propagate,
            DecisionKind::Route,
            DecisionKind::FailFast,
            DecisionKind::Retry,
            DecisionKind::RetryDenied,
            DecisionKind::RootDone,
            DecisionKind::PolicyApply,
        ] {
            assert_eq!(DecisionKind::from_code(k.code()), Some(k));
        }
        assert_eq!(DecisionKind::from_code(200), None);
    }
}
