//! Chained FNV-1a hashing for state digests and frame checksums.
//!
//! The flight recorder needs a hash that is (a) deterministic across
//! platforms and builds, (b) cheap enough to run on every simulation
//! event, and (c) trivially re-implementable in other languages for
//! offline log analysis. 64-bit FNV-1a satisfies all three; it is not
//! cryptographic and does not need to be — the digest detects
//! *divergence*, not tampering by an adversary.
//!
//! Digests are *chained*: each event folds its fields into the running
//! hash, so a single differing field anywhere in the run changes every
//! subsequent digest. That is what lets replay pinpoint the **first**
//! divergent event rather than just "the runs differ somewhere".

/// FNV-1a 64-bit offset basis — the initial state of an empty digest.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold a byte slice into an existing digest state.
#[inline]
pub fn fold_bytes(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Fold a little-endian `u64` into an existing digest state.
#[inline]
pub fn fold_u64(state: u64, v: u64) -> u64 {
    fold_bytes(state, &v.to_le_bytes())
}

/// Fold a little-endian `u32` into an existing digest state.
#[inline]
pub fn fold_u32(state: u64, v: u32) -> u64 {
    fold_bytes(state, &v.to_le_bytes())
}

/// Hash a byte slice from scratch (offset basis start).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fold_bytes(FNV_OFFSET, bytes)
}

/// Frame checksum: FNV-1a 64 over the frame body, truncated to 32 bits.
///
/// Truncation keeps frames compact; 32 bits is ample for detecting the
/// torn writes and bit flips the checksum exists to catch.
#[inline]
pub fn frame_check(bytes: &[u8]) -> u32 {
    fnv1a(bytes) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn chaining_matches_concatenation() {
        let whole = fnv1a(b"hello world");
        let parts = fold_bytes(fold_bytes(FNV_OFFSET, b"hello "), b"world");
        assert_eq!(whole, parts);
    }

    #[test]
    fn u64_fold_is_le_bytes() {
        let v = 0x0123_4567_89ab_cdefu64;
        assert_eq!(fold_u64(FNV_OFFSET, v), fnv1a(&v.to_le_bytes()));
    }
}
