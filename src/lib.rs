//! # meshlayer
//!
//! Façade crate for the `meshlayer` workspace — a reproduction of
//! *"Leveraging Service Meshes as a New Network Layer"* (Ashok, Godfrey,
//! Mittal — HotNets '21).
//!
//! The workspace models the full "cloud native" stack of the paper's Fig 2,
//! bottom-up:
//!
//! * [`simcore`] — deterministic discrete-event engine (time, events, RNG,
//!   histograms).
//! * [`netsim`] — the physical/virtual network: links, TC-style qdiscs,
//!   topology, routing.
//! * [`transport`] — window-based transport with pluggable congestion
//!   control, including scavenger variants.
//! * [`http`] — the application-layer message model and codec.
//! * [`cluster`] — the orchestration substrate (nodes, pods, services,
//!   discovery, service behaviour graphs).
//! * [`mesh`] — the service-mesh layer itself: sidecar proxies and an
//!   xDS-like control plane.
//! * [`flightrec`] — flight recorder: deterministic event/packet/decision
//!   capture with replay and divergence detection.
//! * [`prof`] — the engine observatory: wall-clock phase profiling
//!   (Chrome trace export, Amdahl fits) and sim-time latency provenance
//!   (per-layer latency attribution, waterfalls).
//! * [`core`] — the paper's contribution: provenance tracing and
//!   cross-layer prioritization, plus the end-to-end simulation world.
//! * [`apps`] — reference applications (bookinfo/e-library, e-commerce).
//! * [`workload`] — wrk2-style open-loop load generation and measurement.
//! * [`realnet`] — a real loopback-TCP sidecar prototype (std::net).
//!
//! See `examples/quickstart.rs` for a five-minute tour, and
//! `crates/bench` for the harnesses that regenerate every figure and table
//! in the paper's evaluation.

pub use meshlayer_apps as apps;
pub use meshlayer_cluster as cluster;
pub use meshlayer_core as core;
pub use meshlayer_flightrec as flightrec;
pub use meshlayer_http as http;
pub use meshlayer_mesh as mesh;
pub use meshlayer_netsim as netsim;
pub use meshlayer_prof as prof;
pub use meshlayer_realnet as realnet;
pub use meshlayer_simcore as simcore;
pub use meshlayer_telemetry as telemetry;
pub use meshlayer_transport as transport;
pub use meshlayer_workload as workload;
