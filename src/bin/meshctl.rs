//! `meshctl` — a small operator CLI over the meshlayer library.
//!
//! ```sh
//! meshctl topology                 # print the e-library deployment (Fig 3)
//! meshctl run [RPS] [SECS]         # run the case study, baseline vs optimized
//! meshctl trace [RPS] [SECS]       # run + print the slowest distributed trace
//! meshctl ablate [RPS] [SECS]      # toggle each optimization site (A1-style)
//! meshctl top [RPS] [SECS]         # hierarchical latency roll-up (pod -> service -> zone -> mesh)
//! meshctl incident [RPS] [SECS]    # closed-loop incident: ordered causal timeline
//! meshctl chaos [RPS] [SECS]       # incident with an injected fault script (A7-style)
//! meshctl links [RPS] [SECS]       # per-link utilization table, packet vs fluid split
//! meshctl policy dump [PRESET]     # render a policy snapshot (baseline|prototype|full)
//! meshctl policy diff A B          # toggle-level diff between two presets
//! meshctl validate-trace PATH      # check a --profile Chrome trace JSON file
//! ```
//!
//! Argument parsing is deliberately dependency-free (positional args only).

use meshlayer::apps::{elibrary, ElibraryParams};
use meshlayer::core::{
    build_incident_report, AdaptationConfig, FaultKind, FaultScript, PolicySnapshot, RunMetrics,
    SimSpec, Simulation, TopoMix, TopoParams, XLayerConfig,
};
use meshlayer::mesh::Sampling;
use meshlayer::simcore::{SimDuration, SimTime};
use meshlayer::telemetry::{SloTarget, TelemetryConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: meshctl <topology|run|trace|ablate|top|incident|chaos|links> [RPS] [SECS]");
    eprintln!("       meshctl policy <dump [PRESET] | diff PRESET PRESET>");
    eprintln!("       meshctl validate-trace PATH");
    eprintln!("       presets: baseline | prototype | full");
    ExitCode::from(2)
}

/// Validate a Chrome trace-event file written by a bench binary's
/// `--profile` flag: well-formed JSON, non-empty, every span complete.
fn cmd_validate_trace(path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("validate-trace: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match meshlayer::prof::validate_chrome_trace(&json) {
        Ok(spans) => {
            println!("{path}: ok ({spans} spans)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate-trace: {path} is not a valid trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn spec_at(rps: f64, secs: u64, xlayer: XLayerConfig) -> SimSpec {
    let params = ElibraryParams {
        ls_rps: rps,
        batch_rps: rps,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = xlayer;
    spec.config.duration = SimDuration::from_secs(secs);
    spec.config.warmup = SimDuration::from_secs((secs / 4).max(1));
    spec
}

fn summarize(label: &str, m: &RunMetrics) {
    println!("== {label} ==");
    print!("{}", m.render());
    println!();
}

fn cmd_topology() -> ExitCode {
    let sim = Simulation::build(spec_at(30.0, 1, XLayerConfig::paper_prototype()));
    println!("{}", sim.cluster().render());
    println!("{}", sim.fabric().topology.render());
    ExitCode::SUCCESS
}

fn cmd_run(rps: f64, secs: u64) -> ExitCode {
    eprintln!("running e-library at {rps}+{rps} rps for {secs}s, twice...");
    let base = Simulation::build(spec_at(rps, secs, XLayerConfig::baseline())).run();
    summarize("w/o cross-layer optimization", &base);
    let opt = Simulation::build(spec_at(rps, secs, XLayerConfig::paper_prototype())).run();
    summarize("w/ cross-layer optimization", &opt);
    if let (Some(b), Some(o)) = (
        base.class("latency-sensitive"),
        opt.class("latency-sensitive"),
    ) {
        println!(
            "latency-sensitive speedup: p50 {:.2}x, p99 {:.2}x",
            b.p50_ms / o.p50_ms.max(1e-9),
            b.p99_ms / o.p99_ms.max(1e-9)
        );
    }
    ExitCode::SUCCESS
}

fn cmd_trace(rps: f64, secs: u64) -> ExitCode {
    let mut spec = spec_at(rps, secs, XLayerConfig::paper_prototype());
    spec.mesh.sampling = Sampling::Always;
    let mut sim = Simulation::build(spec);
    let m = sim.run();
    println!("{}", m.render());
    let traces = sim.tracer().traces();
    match traces
        .iter()
        .filter(|t| t.root().is_some())
        .max_by_key(|t| t.duration().unwrap_or_default())
    {
        Some(slowest) => {
            println!(
                "slowest of {} traces ({}):",
                traces.len(),
                slowest.duration().unwrap_or_default()
            );
            print!("{}", slowest.render());
            println!("critical path: {}", slowest.critical_path().join(" -> "));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("no complete traces collected");
            ExitCode::FAILURE
        }
    }
}

fn cmd_ablate(rps: f64, secs: u64) -> ExitCode {
    println!("# variant            | LS p50 | LS p99 | batch p99");
    for (name, xl) in [
        ("baseline", XLayerConfig::baseline()),
        ("prototype (a+c)", XLayerConfig::paper_prototype()),
        ("full", XLayerConfig::full()),
    ] {
        let m = Simulation::build(spec_at(rps, secs, xl)).run();
        let ls = m.class("latency-sensitive");
        let ba = m.class("batch-analytics");
        println!(
            "{name:<20} | {:>6.1} | {:>6.1} | {:>9.1}",
            ls.map_or(0.0, |c| c.p50_ms),
            ls.map_or(0.0, |c| c.p99_ms),
            ba.map_or(0.0, |c| c.p99_ms),
        );
    }
    ExitCode::SUCCESS
}

/// `meshctl top`: the fleet roll-up view. One run, then the merged
/// pod → service → zone → mesh latency hierarchy — every row's
/// quantiles are true quantiles over its members' samples (exact sketch
/// merge), not averages of averages.
fn cmd_top(rps: f64, secs: u64) -> ExitCode {
    eprintln!("running e-library at {rps}+{rps} rps for {secs}s...");
    let m = Simulation::build(spec_at(rps, secs, XLayerConfig::paper_prototype())).run();
    if m.telemetry.rollup.is_empty() {
        eprintln!("no roll-up rows (no requests completed?)");
        return ExitCode::FAILURE;
    }
    println!(
        "# level   name                     parent           count   err |   p50ms   p99ms   maxms"
    );
    for r in &m.telemetry.rollup {
        let indent = match r.level.as_str() {
            "mesh" => "",
            "zone" | "service" => "  ",
            _ => "    ",
        };
        println!(
            "{:<9} {:<24} {:<16} {:>6} {:>5} | {:>7.1} {:>7.1} {:>7.1}",
            r.level,
            format!("{indent}{}", r.name),
            r.parent,
            r.count,
            r.errors,
            r.p50_ms,
            r.p99_ms,
            r.max_ms
        );
    }
    ExitCode::SUCCESS
}

/// `meshctl incident`: drive the closed adaptation loop (A6's setup) at
/// a contended load with a flight capture attached, then join burn
/// alerts, anomalies, the policy transition, per-layer acks and the
/// recovery into one ordered causal timeline.
fn cmd_incident(rps: f64, secs: u64) -> ExitCode {
    run_incident(rps, secs, None, "incident")
}

/// `meshctl chaos`: the same closed loop with a deterministic fault
/// script injected mid-run — a gray `ratings` replica followed by a
/// short `reviews` partition. The capture tags every injection, so the
/// timeline's causal chain starts at the fault, not at the alert.
fn cmd_chaos(rps: f64, secs: u64) -> ExitCode {
    let script = FaultScript::new()
        .with(
            SimTime::from_millis(secs * 1000 / 4),
            FaultKind::GrayFailure {
                service: "ratings".into(),
                replica: 0,
                speed_factor: 2.0,
                failure_rate: 0.4,
                clear_after: Some(SimDuration::from_millis(secs * 1000 / 5)),
            },
        )
        .with(
            SimTime::from_millis(secs * 1000 / 2),
            FaultKind::Partition {
                service: "reviews".into(),
                heal_after: SimDuration::from_millis(secs * 1000 / 8),
            },
        );
    print!("{}", script.render());
    run_incident(rps, secs, Some(script), "chaos")
}

fn run_incident(rps: f64, secs: u64, chaos: Option<FaultScript>, name: &str) -> ExitCode {
    let mut spec = spec_at(rps, secs, XLayerConfig::baseline());
    spec.chaos = chaos;
    spec.config.telemetry = TelemetryConfig::default().with_target(SloTarget::new(
        "latency-sensitive",
        SimDuration::from_millis(100),
        0.05,
    ));
    spec.adaptation = Some(AdaptationConfig::new(
        "latency-sensitive",
        XLayerConfig::paper_prototype(),
    ));
    let mut sim = Simulation::build(spec);
    let out_dir = std::path::PathBuf::from(
        std::env::var("MESHLAYER_OUT").unwrap_or_else(|_| "results".into()),
    );
    let flight_path = out_dir.join(format!("{name}.flight"));
    if let Err(e) = sim.record_to(name, &flight_path) {
        eprintln!(
            "cannot attach flight capture at {}: {e}",
            flight_path.display()
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "running adaptive e-library at {rps}+{rps} rps for {secs}s (capturing flight log)..."
    );
    let m = sim.run();
    let log = match meshlayer::flightrec::FlightLog::load(&flight_path) {
        Ok(log) => Some(log),
        Err(e) => {
            eprintln!("flight log unreadable: {e}");
            None
        }
    };
    let report = build_incident_report(&m.telemetry, sim.policy().transitions(), log.as_ref());
    print!("{}", report.render());
    if report.complete {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `meshctl links`: run a generated ~200-pod fabric under the
/// background-heavy mix with the background classes as fluid rate flows
/// (DESIGN.md §14), then print the per-link utilization table with the
/// packet vs fluid byte split, busiest links first. The output is a
/// pure function of the deterministic run — every column derives from
/// simulation counters, never wall clock — so CI diffs two invocations
/// byte for byte.
fn cmd_links(rps: f64, secs: u64) -> ExitCode {
    let mut p = TopoParams::sized(200, rps);
    p.mix = TopoMix::BackgroundFluid;
    let mut spec = p.spec();
    spec.config.duration = SimDuration::from_secs(secs);
    spec.config.warmup = SimDuration::from_secs((secs / 4).max(1));
    eprintln!(
        "running a {}-pod generated fabric at {rps:.0} rps (fluid background) for {secs}s...",
        p.pod_count()
    );
    let m = Simulation::build(spec).run();
    let sim_s = m.sim_seconds.max(1e-9);
    // Share of line rate per plane, from deterministic byte counters.
    let share = |bytes: u64, rate_bps: u64| bytes as f64 * 8.0 / (rate_bps as f64 * sim_s);
    let mut rows: Vec<_> = m.links.iter().collect();
    // Busiest first; ties break on the (unique) rendered name so the
    // ordering — and therefore the byte output — is total.
    rows.sort_by(|a, b| {
        let ua = share(a.tx_bytes + a.fluid_bytes, a.rate_bps);
        let ub = share(b.tx_bytes + b.fluid_bytes, b.rate_bps);
        ub.partial_cmp(&ua)
            .unwrap()
            .then_with(|| a.name.cmp(&b.name))
    });
    const TOP: usize = 12;
    println!(
        "# links: top {} of {} by utilization (packet + fluid share of line rate)",
        TOP.min(rows.len()),
        rows.len()
    );
    println!(
        "# link                           | rate Gbps | pkt MiB  | fluid MiB | pkt%  | fluid% | drops | fluid-drop B"
    );
    for l in rows.iter().take(TOP) {
        println!(
            "{:<33} | {:>9.1} | {:>8.2} | {:>9.2} | {:>5.1} | {:>6.1} | {:>5} | {:>12}",
            l.name,
            l.rate_bps as f64 / 1e9,
            l.tx_bytes as f64 / (1024.0 * 1024.0),
            l.fluid_bytes as f64 / (1024.0 * 1024.0),
            share(l.tx_bytes, l.rate_bps) * 100.0,
            share(l.fluid_bytes, l.rate_bps) * 100.0,
            l.drops,
            l.fluid_drop_bytes,
        );
    }
    let pkt: u64 = m.links.iter().map(|l| l.tx_bytes).sum();
    let fluid: u64 = m.links.iter().map(|l| l.fluid_bytes).sum();
    let fdrop: u64 = m.links.iter().map(|l| l.fluid_drop_bytes).sum();
    println!("totals: pkt_bytes={pkt} fluid_bytes={fluid} fluid_drop_bytes={fdrop}");
    for f in &m.fluid {
        println!(
            "fluid class {}: flows={} demand_bps={} alloc_bps={} delivered={} dropped={}",
            f.class, f.flows, f.demand_bps, f.alloc_bps, f.delivered_bytes, f.dropped_bytes
        );
    }
    if fluid == 0 {
        eprintln!("links: FAIL: no fluid bytes flowed on any link");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// A named preset rendered as the policy snapshot the control plane
/// would push for it. Versions are illustrative: a dump is v1, a diff
/// is v1 -> v2.
fn preset_snapshot(name: &str, version: u64) -> Option<PolicySnapshot> {
    let xlayer = match name {
        "baseline" => XLayerConfig::baseline(),
        "prototype" => XLayerConfig::paper_prototype(),
        "full" => XLayerConfig::full(),
        _ => return None,
    };
    Some(PolicySnapshot {
        version,
        xlayer,
        high_share: meshlayer::core::HIGH_PRIO_SHARE,
        queue_pkts: meshlayer::core::NetworkPlan::default().queue_pkts,
    })
}

fn cmd_policy(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("dump") => {
            let name = args.get(1).map(String::as_str).unwrap_or("prototype");
            let Some(snap) = preset_snapshot(name, 1) else {
                eprintln!("unknown preset {name:?}");
                return usage();
            };
            print!("{}", snap.render());
            ExitCode::SUCCESS
        }
        Some("diff") => {
            let (Some(a), Some(b)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let (Some(from), Some(to)) = (preset_snapshot(a, 1), preset_snapshot(b, 2)) else {
                eprintln!("unknown preset in {a:?} / {b:?}");
                return usage();
            };
            let changes = from.diff(&to);
            if changes.is_empty() {
                println!("no toggle changes: {a} == {b}");
            } else {
                println!("policy diff: {a} -> {b} ({} toggles change)", changes.len());
                for (name, old, new) in changes {
                    println!("  {name:<20} {old} -> {new}");
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    if cmd == "policy" {
        return cmd_policy(&args[1..]);
    }
    if cmd == "validate-trace" {
        let Some(path) = args.get(1) else {
            return usage();
        };
        return cmd_validate_trace(path);
    }
    // `incident` needs a contended load for the SLO to burn at all;
    // `links` drives a generated fabric, so its load is total mix RPS;
    // the other commands default to the paper's moderate operating point.
    let default_rps = match cmd.as_str() {
        "incident" | "chaos" => 80.0,
        "links" => 20_000.0,
        _ => 30.0,
    };
    let rps: f64 = args
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_rps);
    let secs: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(10);
    if rps <= 0.0 || secs == 0 {
        return usage();
    }
    match cmd.as_str() {
        "topology" => cmd_topology(),
        "run" => cmd_run(rps, secs),
        "trace" => cmd_trace(rps, secs),
        "ablate" => cmd_ablate(rps, secs),
        "top" => cmd_top(rps, secs),
        "incident" => cmd_incident(rps, secs),
        "chaos" => cmd_chaos(rps, secs),
        "links" => cmd_links(rps, secs),
        _ => usage(),
    }
}
