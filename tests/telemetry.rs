//! End-to-end telemetry acceptance: the scrape loop on real runs, SLO
//! burn-rate alerting under load, exporter round-trips, and serde
//! round-trips of the observable types.

use meshlayer::apps::{elibrary, ElibraryParams};
use meshlayer::core::{RunMetrics, Simulation, XLayerConfig};
use meshlayer::mesh::Span;
use meshlayer::simcore::SimDuration;
use meshlayer::telemetry::export::{parse_prometheus, parse_zipkin, prometheus_text, zipkin_json};
use meshlayer::telemetry::{IntervalStats, SloTarget, TelemetrySummary};

/// A short seeded e-library run with the paper's cross-layer prototype on.
fn short_run(secs: u64, slo: Option<SloTarget>) -> (Simulation, RunMetrics) {
    let mut spec = elibrary(&ElibraryParams::default());
    spec.xlayer = XLayerConfig::paper_prototype();
    spec.config.duration = SimDuration::from_secs(secs);
    spec.config.warmup = SimDuration::from_millis(500);
    if let Some(t) = slo {
        spec.config.telemetry.targets.push(t);
    }
    let mut sim = Simulation::build(spec);
    let m = sim.run();
    (sim, m)
}

#[test]
fn seeded_run_yields_monotone_p99_series() {
    let (_, m) = short_run(3, None);
    // ISSUE acceptance: >= 10 scrape points with a per-interval p99 for
    // the latency-sensitive class.
    assert!(m.telemetry.scrapes >= 10, "scrapes {}", m.telemetry.scrapes);
    let ls = m
        .telemetry
        .class("latency-sensitive")
        .expect("latency-sensitive series");
    assert!(ls.points.len() >= 10, "points {}", ls.points.len());
    let populated: Vec<&IntervalStats> = ls.points.iter().filter(|p| p.count > 0).collect();
    assert!(
        populated.len() >= 10,
        "populated intervals {}",
        populated.len()
    );
    for p in &populated {
        assert!(p.p99_ms > 0.0, "p99 at t={} is {}", p.t_s, p.p99_ms);
        assert!(p.p99_ms >= p.p50_ms);
    }
    // Interval timestamps strictly increase.
    for w in ls.points.windows(2) {
        assert!(
            w[1].t_s > w[0].t_s,
            "t_s not monotone: {} -> {}",
            w[0].t_s,
            w[1].t_s
        );
    }
    // The scrape loop also sampled the fabric.
    assert!(m
        .telemetry
        .gauges
        .iter()
        .any(|g| g.name == "link_utilization" && g.points.iter().any(|p| p.value > 0.0)));
}

#[test]
fn slo_alerts_fire_overloaded_but_not_nominal() {
    // Nominal: a latency target the run comfortably meets -> no alerts.
    let (_, nominal) = short_run(
        2,
        Some(SloTarget::new(
            "latency-sensitive",
            SimDuration::from_secs(5),
            0.5,
        )),
    );
    assert!(
        nominal.telemetry.alerts.is_empty(),
        "unexpected alerts: {:?}",
        nominal.telemetry.alerts
    );

    // Overloaded: an SLO no run can meet (sub-RTT latency, 0.1% budget)
    // -> every request is a violation and the burn rate pegs far above
    // the 2x threshold in both windows.
    let (_, overloaded) = short_run(
        2,
        Some(SloTarget::new(
            "latency-sensitive",
            SimDuration::from_micros(10),
            0.001,
        )),
    );
    assert!(
        !overloaded.telemetry.alerts.is_empty(),
        "expected a burn-rate alert"
    );
    let a = &overloaded.telemetry.alerts[0];
    assert_eq!(a.class, "latency-sensitive");
    assert!(a.fast_burn > a.threshold && a.slow_burn > a.threshold);
}

#[test]
fn prometheus_export_round_trips_from_real_run() {
    let (_, m) = short_run(2, None);
    let text = prometheus_text(&m.telemetry);
    let samples = parse_prometheus(&text).expect("well-formed exposition");
    assert!(!samples.is_empty());
    // The scrape counter round-trips exactly.
    let scrapes = samples
        .iter()
        .find(|s| s.name == "meshlayer_scrapes_total")
        .expect("scrape counter");
    assert_eq!(scrapes.value as u64, m.telemetry.scrapes);
    // Per-class quantile samples carry their labels through the parse.
    assert!(samples.iter().any(|s| {
        s.name == "meshlayer_class_latency_ms"
            && s.label("class") == Some("latency-sensitive")
            && s.label("quantile") == Some("0.99")
    }));
}

#[test]
fn zipkin_export_round_trips_from_real_run() {
    let (sim, m) = short_run(2, None);
    let spans = sim.tracer().spans();
    assert!(m.spans > 0 && !spans.is_empty());
    let json = zipkin_json(spans);
    let parsed = parse_zipkin(&json).expect("well-formed zipkin json");
    assert_eq!(parsed.len(), spans.len());
    // Parent links survive the round trip: nearly all non-root spans'
    // parent ids resolve to another span in the dump (the linked trace
    // trees the analytics are built from). RPCs still in flight at the
    // run cutoff leave a few dangling links — that truncation is allowed.
    let ids: std::collections::HashSet<&str> = parsed.iter().map(|z| z.id.as_str()).collect();
    let children: Vec<&str> = parsed
        .iter()
        .filter_map(|z| z.parent_id.as_deref())
        .collect();
    assert!(!children.is_empty(), "expected linked child spans");
    let resolved = children.iter().filter(|p| ids.contains(**p)).count();
    assert!(
        resolved * 10 >= children.len() * 9,
        "only {resolved}/{} parent links resolve",
        children.len()
    );
}

#[test]
fn observable_types_serde_round_trip() {
    let (sim, m) = short_run(2, None);

    // RunMetrics round-trips through JSON with its telemetry payload.
    let json = serde_json::to_string(&m).expect("serialize RunMetrics");
    let back: RunMetrics = serde_json::from_str(&json).expect("deserialize RunMetrics");
    assert_eq!(back.world.roots_ok, m.world.roots_ok);
    assert_eq!(back.telemetry.scrapes, m.telemetry.scrapes);
    assert_eq!(back.telemetry.classes.len(), m.telemetry.classes.len());
    assert_eq!(back.analytics.traces, m.analytics.traces);
    assert_eq!(back.event_profile.len(), m.event_profile.len());

    // TelemetrySummary alone.
    let json = serde_json::to_string(&m.telemetry).expect("serialize summary");
    let back: TelemetrySummary = serde_json::from_str(&json).expect("deserialize summary");
    assert_eq!(back.scrapes, m.telemetry.scrapes);
    let ls = m.telemetry.class("latency-sensitive").unwrap();
    let ls_back = back.class("latency-sensitive").unwrap();
    assert_eq!(ls.points.len(), ls_back.points.len());
    for (a, b) in ls.points.iter().zip(&ls_back.points) {
        assert_eq!(a.count, b.count);
        assert!((a.p99_ms - b.p99_ms).abs() < 1e-9);
    }

    // Raw spans.
    let spans = sim.tracer().spans();
    let json = serde_json::to_string(&spans[0]).expect("serialize span");
    let back: Span = serde_json::from_str(&json).expect("deserialize span");
    assert_eq!(back, spans[0]);
}
