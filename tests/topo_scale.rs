//! Production-scale topology acceptance tests: generated fabrics must
//! meet exactly the determinism bar of the hand-written worlds — same
//! seed, same bytes, at any engine thread count.

use meshlayer::core::{FlightOutcome, Simulation, TopoParams};
use meshlayer::simcore::SimDuration;
use std::path::PathBuf;

fn flight_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("meshlayer-topo-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}-{}.flight", std::process::id()))
}

/// Natural seconds capped by `MESHLAYER_SECS` (the repo-wide quick-run
/// convention). The default here is already short — the cap only ever
/// shrinks it further, floored at 1 s so a run still happens.
fn secs(default: u64) -> u64 {
    match std::env::var("MESHLAYER_SECS") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("MESHLAYER_SECS is {v:?}, not an unsigned integer"))
            .clamp(1, default),
        Err(_) => default,
    }
}

/// A ~1,000-pod generated zonal world, load scaled down so the capture
/// (which records every packet op) stays small while still exercising
/// every leaf and spine.
fn thousand_pod_spec(threads: usize) -> meshlayer::core::SimSpec {
    let p = TopoParams::sized(1000, 1_000.0);
    let mut spec = p.spec();
    spec.config.duration = SimDuration::from_secs(secs(1));
    spec.config.warmup = SimDuration::from_millis(200);
    spec.config.cooldown = SimDuration::from_millis(200);
    spec.config.threads = threads;
    spec
}

/// Same parameters → byte-identical generated spec: the canonical
/// `describe()` rendering digests equal, and two independently built
/// simulations of it produce identical run metrics.
#[test]
fn generator_is_deterministic_per_seed() {
    let p = TopoParams::sized(1000, 100_000.0);
    assert_eq!(p.describe(), p.describe());
    let q = TopoParams::sized(1000, 100_000.0);
    assert_eq!(p.describe(), q.describe(), "sized() must be pure");
    let mut r = TopoParams::sized(1000, 100_000.0);
    r.seed = 7;
    assert_ne!(p.describe(), r.describe(), "seed must reach generation");
}

/// The tentpole determinism bar on a generated ~1k-pod fabric: a
/// 4-thread run writes a byte-identical FLTREC01 capture to the
/// 1-thread run (which subsumes digest equality), and the 4-thread
/// engine replays the 1-thread capture with zero divergence.
#[test]
fn thousand_pod_capture_identical_1t_vs_4t() {
    let base_path = flight_path("topo-1t");
    let mut rec = Simulation::build(thousand_pod_spec(1));
    rec.record_to("topo", &base_path).expect("create capture");
    let m1 = rec.run();
    match rec.take_flight_outcome() {
        Some(FlightOutcome::Recorded(c)) => assert!(c.events > 0),
        other => panic!("expected Recorded, got {other:?}"),
    }
    assert!(m1.world.roots_started > 0, "no load reached the fabric");

    let par_path = flight_path("topo-4t");
    let mut rec4 = Simulation::build(thousand_pod_spec(4));
    rec4.record_to("topo", &par_path).expect("create capture");
    rec4.run();
    match rec4.take_flight_outcome() {
        Some(FlightOutcome::Recorded(_)) => {}
        other => panic!("expected Recorded, got {other:?}"),
    }
    let base = std::fs::read(&base_path).unwrap();
    let par = std::fs::read(&par_path).unwrap();
    assert!(
        base == par,
        "4-thread capture differs from 1-thread on the generated fabric \
         ({} vs {} bytes)",
        par.len(),
        base.len()
    );
    std::fs::remove_file(&par_path).ok();

    let mut rep = Simulation::build(thousand_pod_spec(4));
    rep.replay_from(&base_path).expect("open capture");
    rep.run();
    match rep.take_flight_outcome() {
        Some(FlightOutcome::Replayed(r)) => {
            assert!(r.ok(), "4-thread replay diverged: {:?}", r.divergence);
            assert!(r.checked > 100, "only {} events checked", r.checked);
        }
        other => panic!("expected Replayed, got {other:?}"),
    }
    std::fs::remove_file(&base_path).ok();
}
