//! Engine-observatory guarantees: wall-clock phase profiling must be
//! invisible to the simulation (byte-identical captures, identical
//! metrics), and sim-time latency provenance must be exact (per-layer
//! components sum to the recorded end-to-end latency for every request)
//! and bit-deterministic across engine thread counts.

use meshlayer::apps::{elibrary, fanout, ElibraryParams};
use meshlayer::core::{FlightOutcome, SimSpec, Simulation, XLayerConfig};
use meshlayer::prof::{chrome_trace_json, validate_chrome_trace, Layer, ProfileReport};
use meshlayer::simcore::SimDuration;
use std::path::PathBuf;

fn flight_path(name: &str) -> PathBuf {
    std::env::temp_dir()
        .join("meshlayer-observability-tests")
        .join(name)
}

/// Short e-library run (the paper's running example).
fn elib_spec() -> SimSpec {
    let mut spec = elibrary(&ElibraryParams {
        ls_rps: 20.0,
        batch_rps: 10.0,
        ..ElibraryParams::default()
    });
    spec.xlayer = XLayerConfig::paper_prototype();
    spec.config.duration = SimDuration::from_secs(2);
    spec.config.warmup = SimDuration::from_millis(300);
    spec.config.cooldown = SimDuration::from_millis(200);
    spec
}

/// Fan-out app: exercises `Par` joins in the provenance composition.
fn fanout_spec() -> SimSpec {
    let mut spec = fanout(2, 1, 3, 2.0, 50.0);
    spec.config.duration = SimDuration::from_secs(2);
    spec.config.warmup = SimDuration::from_millis(300);
    spec.config.cooldown = SimDuration::from_millis(200);
    spec
}

/// `RunMetrics` serialized with the host-dependent wall-clock fields
/// zeroed (same convention as `tests/prop_sim.rs`).
fn metrics_fingerprint(m: &meshlayer::core::RunMetrics) -> String {
    let json = serde_json::to_string(m).expect("serializable metrics");
    let key = "\"wall_ns\":";
    let mut out = String::with_capacity(json.len());
    let mut rest = json.as_str();
    while let Some(i) = rest.find(key) {
        let after = i + key.len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let end = tail
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Record a run, optionally profiled, at a thread count. Returns the
/// capture bytes, the metrics fingerprint, and the profile report.
fn recorded_run(
    spec: SimSpec,
    threads: usize,
    profile: bool,
    tag: &str,
) -> (Vec<u8>, String, Option<ProfileReport>) {
    let path = flight_path(tag);
    let mut spec = spec;
    spec.config.threads = threads;
    let mut sim = Simulation::build(spec);
    sim.record_to("test", &path).expect("create capture");
    if profile {
        sim.enable_profiling();
    }
    let m = sim.run();
    match sim.take_flight_outcome() {
        Some(FlightOutcome::Recorded(_)) => {}
        other => panic!("expected a recording, got {other:?}"),
    }
    let report = sim.take_profile();
    assert_eq!(report.is_some(), profile, "profile iff requested");
    let bytes = std::fs::read(&path).unwrap();
    (bytes, metrics_fingerprint(&m), report)
}

/// Phase profiling is observation only: captures and metrics are
/// byte-identical with it on or off, on both engines.
#[test]
fn profiling_leaves_captures_and_metrics_byte_identical() {
    for threads in [1usize, 4] {
        let (plain_bytes, plain_print, _) = recorded_run(
            elib_spec(),
            threads,
            false,
            &format!("plain-{threads}t.flight"),
        );
        let (prof_bytes, prof_print, report) = recorded_run(
            elib_spec(),
            threads,
            true,
            &format!("profiled-{threads}t.flight"),
        );
        assert!(
            plain_bytes == prof_bytes,
            "{threads}t: profiling changed the capture ({} vs {} bytes)",
            plain_bytes.len(),
            prof_bytes.len()
        );
        assert_eq!(
            plain_print, prof_print,
            "{threads}t: profiling changed RunMetrics"
        );
        let report = report.expect("profile present");
        assert!(report.summary.events > 0, "{threads}t: no events profiled");
        assert_eq!(report.summary.threads, threads);
        if threads > 1 {
            assert_eq!(report.summary.engine, "sharded");
            assert!(report.summary.windows > 0, "sharded run saw no windows");
            assert!(
                report.summary.serial_fraction > 0.0 && report.summary.serial_fraction <= 1.0,
                "serial fraction out of range: {}",
                report.summary.serial_fraction
            );
        } else {
            assert_eq!(report.summary.engine, "sequential");
            assert_eq!(
                report.summary.serial_fraction, 1.0,
                "sequential engine is all serial"
            );
        }
    }
}

/// The emitted Chrome trace JSON is well-formed and non-empty at every
/// thread count.
#[test]
fn profiler_trace_json_validates() {
    for threads in [1usize, 4] {
        let mut spec = elib_spec();
        spec.config.threads = threads;
        let mut sim = Simulation::build(spec);
        sim.enable_profiling();
        sim.run();
        let report = sim.take_profile().expect("profile present");
        let json = chrome_trace_json(&[("engine", &report.trace)]);
        let spans = validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("{threads}t trace invalid: {e}"));
        assert!(spans > 0, "{threads}t: empty trace");
    }
}

/// Exactness: for every recorded request, the seven per-layer components
/// sum to the recorded end-to-end latency — and the provenance stream is
/// bit-identical across engine thread counts.
#[test]
fn provenance_components_sum_exactly_and_match_across_threads() {
    type SpecFn = fn() -> SimSpec;
    let apps: [(&str, SpecFn); 2] = [("elibrary", elib_spec), ("fanout", fanout_spec)];
    for (name, build) in apps {
        let mut prints = Vec::new();
        for threads in [1usize, 4] {
            let mut spec = build();
            spec.config.threads = threads;
            let mut sim = Simulation::build(spec);
            sim.run();
            let provs = sim.request_provenance();
            assert!(
                !provs.is_empty(),
                "{name} @ {threads}t: no provenance records"
            );
            for p in provs {
                assert_eq!(
                    p.breakdown.sum(),
                    p.total_ns,
                    "{name} @ {threads}t: request {} components sum to {} ns, \
                     e2e is {} ns ({:?})",
                    p.request_id,
                    p.breakdown.sum(),
                    p.total_ns,
                    p.breakdown
                );
                assert_eq!(
                    p.total_ns,
                    p.completed_ns - p.intended_ns,
                    "{name} @ {threads}t: total disagrees with timestamps"
                );
            }
            // Some latency must land in real layers, not just residuals.
            let fabric: u64 = provs.iter().map(|p| p.breakdown.get(Layer::Fabric)).sum();
            let app: u64 = provs.iter().map(|p| p.breakdown.get(Layer::App)).sum();
            assert!(fabric > 0, "{name} @ {threads}t: no fabric time attributed");
            assert!(app > 0, "{name} @ {threads}t: no app time attributed");
            prints.push(serde_json::to_string(&provs.to_vec()).unwrap());
        }
        assert_eq!(
            prints[0], prints[1],
            "{name}: provenance differs between 1 and 4 threads"
        );
    }
}
