//! Fleet-observability acceptance tests: the anomaly detector's
//! signal-to-noise contract (flags real shifts fast, stays silent on
//! steady load), the A6 incident timeline's causal reconstruction, and
//! bit-identity of every new telemetry artifact across engine thread
//! counts.

use meshlayer::apps::{elibrary, ElibraryParams};
use meshlayer::core::{
    build_incident_report, AdaptationConfig, RunMetrics, SimSpec, Simulation, XLayerConfig,
};
use meshlayer::flightrec::FlightLog;
use meshlayer::simcore::{SimDuration, SimTime};
use meshlayer::telemetry::{AnomalyKind, SloTarget, TelemetryConfig, TelemetryHub};
use std::path::PathBuf;

fn flight_path(name: &str) -> PathBuf {
    std::env::temp_dir()
        .join("meshlayer-incident-tests")
        .join(name)
}

/// Natural seconds capped by `MESHLAYER_SECS` (same convention as
/// `tests/reproduction.rs`; the floor keeps the burn windows and the
/// detector baselines from being truncated into nonsense).
fn secs(default: u64) -> u64 {
    match std::env::var("MESHLAYER_SECS") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("MESHLAYER_SECS is {v:?}, not an unsigned integer"))
            .clamp(4, default),
        Err(_) => default,
    }
}

fn steady_spec(rps: f64, duration: u64, xlayer: XLayerConfig) -> SimSpec {
    let mut spec = elibrary(&ElibraryParams {
        ls_rps: rps,
        batch_rps: rps,
        ..ElibraryParams::default()
    });
    spec.xlayer = xlayer;
    spec.config.duration = SimDuration::from_secs(duration);
    spec.config.warmup = SimDuration::from_secs(1);
    spec
}

/// The A6 closed-loop setup: baseline mesh, burning SLO, controller
/// armed with the paper-prototype policy. Contended load so the burn
/// actually happens.
fn incident_spec(threads: usize) -> SimSpec {
    let mut spec = steady_spec(80.0, secs(4), XLayerConfig::baseline());
    spec.config.threads = threads;
    spec.config.telemetry = TelemetryConfig::default().with_target(SloTarget::new(
        "latency-sensitive",
        SimDuration::from_millis(100),
        0.05,
    ));
    spec.adaptation = Some(AdaptationConfig::new(
        "latency-sensitive",
        XLayerConfig::paper_prototype(),
    ));
    spec
}

/// `RunMetrics` serialized with host-dependent wall-clock fields zeroed
/// (same convention as `tests/observability.rs`).
fn metrics_fingerprint(m: &RunMetrics) -> String {
    let json = serde_json::to_string(m).expect("serializable metrics");
    let key = "\"wall_ns\":";
    let mut out = String::with_capacity(json.len());
    let mut rest = json.as_str();
    while let Some(i) = rest.find(key) {
        let after = i + key.len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let end = tail
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Steady fig4-shape load must not trip the latency change-point or
/// error-burst detectors — zero false positives, in either mesh
/// configuration. (Queue-growth events are allowed only for the
/// genuinely contended `*->switch` uplinks, where the drop-tail queue
/// really does ramp monotonically.)
#[test]
fn steady_baseline_has_no_latency_or_error_anomalies() {
    for xl in [XLayerConfig::baseline(), XLayerConfig::paper_prototype()] {
        let m = Simulation::build(steady_spec(30.0, secs(8), xl)).run();
        assert!(
            m.telemetry.scrapes > 50,
            "telemetry plane did not run: {} scrapes",
            m.telemetry.scrapes
        );
        for a in &m.telemetry.anomalies {
            assert_eq!(
                a.kind,
                AnomalyKind::QueueGrowth,
                "false positive on steady load: {a:?}"
            );
            assert!(
                a.subject.contains("->switch"),
                "queue growth flagged off the contended uplinks: {a:?}"
            );
        }
    }
}

/// An injected latency shift is flagged within 3 intervals of onset
/// (the detector actually fires on the very first shifted interval).
#[test]
fn injected_shift_flagged_within_three_intervals() {
    let interval = SimDuration::from_millis(100);
    let mut hub = TelemetryHub::new(TelemetryConfig::default());
    let shift_at = 30u64; // interval index where the regression starts
    for i in 0..40u64 {
        for k in 0..10u64 {
            let now = SimTime::from_millis(i * 100 + k * 9 + 1);
            let ms = if i >= shift_at { 90 } else { 6 };
            hub.observe_latency("ls", now, Some(SimDuration::from_millis(ms)));
        }
        hub.on_scrape(SimTime::from_nanos(interval.as_nanos() * (i + 1)));
    }
    let first_flag = hub
        .anomalies()
        .iter()
        .find(|a| a.kind == AnomalyKind::LatencyShift && a.direction == 1)
        .unwrap_or_else(|| panic!("shift never flagged: {:?}", hub.anomalies()));
    let onset_s = shift_at as f64 * 0.1;
    assert!(
        first_flag.at_s >= onset_s - 1e-9 && first_flag.at_s <= onset_s + 0.3 + 1e-9,
        "flagged at {:.1}s, onset {onset_s:.1}s: more than 3 intervals late",
        first_flag.at_s
    );
    // And nothing fired before the shift existed.
    assert!(
        !hub.anomalies().iter().any(|a| a.at_s < onset_s - 1e-9),
        "false positive before onset: {:?}",
        hub.anomalies()
    );
}

/// The A6 flip reconstructs as a complete causal chain — burn alert →
/// controller decision → policy push → per-layer acks (from the flight
/// log) → recovery — with the recovery shift flagged within 3 intervals
/// of convergence. One recorded run: captures are append-heavy (every
/// packet op), so the cross-thread identity check below runs without a
/// recorder and capture-byte identity is covered by `tests/prop_sim.rs`.
#[test]
fn a6_incident_chain_reconstructs_with_flight_log_join() {
    let path = flight_path("incident-1t.flight");
    let mut sim = Simulation::build(incident_spec(1));
    sim.record_to("incident", &path).expect("create capture");
    let m = sim.run();
    let log = FlightLog::load(&path).expect("readable capture");
    let _ = std::fs::remove_file(&path); // multi-GB at this load; don't leave it
    assert!(
        !log.anomalies.is_empty(),
        "no anomaly frames in the flight log"
    );
    let report = build_incident_report(&m.telemetry, sim.policy().transitions(), Some(&log));

    assert!(report.complete, "incomplete chain:\n{}", report.render());
    let got: Vec<&str> = report.chain.iter().map(String::as_str).collect();
    assert_eq!(got.len(), 5, "wrong chain: {got:?}");
    assert_eq!(
        &got[..3],
        ["burn-alert", "controller-decision", "policy-push"]
    );
    assert!(got[3].starts_with("acks("), "wrong chain: {got:?}");
    assert_eq!(got[4], "recovery");
    assert!(report.acks > 0, "no per-layer acks joined from the log");

    // Recovery flagged within 3 intervals of the push converging.
    let converged = sim.policy().transitions()[0]
        .converged_at
        .expect("transition converged")
        .as_nanos() as f64
        / 1e9;
    let recovery = report
        .events
        .iter()
        .find(|e| e.stage == "recovery")
        .expect("recovery event present");
    assert!(
        recovery.t_s <= converged + 0.3 + 1e-9,
        "recovery flagged {:.1}s after convergence at {converged:.1}s",
        recovery.t_s
    );
}

/// Every new observability artifact — anomaly stream, hierarchy
/// roll-up, the telemetry summary they live in, and the incident report
/// built from it — is bit-identical at 1 and 4 engine threads.
#[test]
fn incident_artifacts_identical_across_threads() {
    let mut artifacts: Vec<(String, String, String)> = Vec::new();
    for threads in [1usize, 4] {
        let mut sim = Simulation::build(incident_spec(threads));
        let m = sim.run();
        assert!(
            !m.telemetry.anomalies.is_empty(),
            "{threads}t: contended adaptive run produced no anomalies"
        );
        assert!(
            !m.telemetry.rollup.is_empty(),
            "{threads}t: no roll-up rows"
        );
        // Without a flight log the transition's convergence stands in
        // for the ack stage; the chain must still close.
        let report = build_incident_report(&m.telemetry, sim.policy().transitions(), None);
        assert!(report.complete, "{threads}t:\n{}", report.render());
        artifacts.push((
            serde_json::to_string(&m.telemetry).unwrap(),
            serde_json::to_string(&report).unwrap(),
            metrics_fingerprint(&m),
        ));
    }
    let (t1, r1, m1) = &artifacts[0];
    let (t4, r4, m4) = &artifacts[1];
    assert_eq!(t1, t4, "telemetry summary differs across thread counts");
    assert_eq!(r1, r4, "incident report differs across thread counts");
    assert_eq!(m1, m4, "metrics fingerprint differs across thread counts");
}
