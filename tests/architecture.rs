//! Architecture-level integration tests: the Fig 1 service-mesh shape
//! (control plane pushing config to per-pod sidecars, certificates,
//! telemetry) and the Fig 2 layering, asserted on the live types across
//! crates.

use meshlayer::cluster::{ServiceBehavior, ServiceSpec};
use meshlayer::core::{SimSpec, Simulation, INGRESS_SERVICE};
use meshlayer::mesh::{ControlPlane, LbPolicy, MeshConfig, Sampling};
use meshlayer::simcore::{SimDuration, SimTime};
use meshlayer::workload::WorkloadSpec;

fn small_sim() -> Simulation {
    let services = vec![
        ServiceSpec::new("web", 2, ServiceBehavior::leaf(0.001, 1024.0)),
        ServiceSpec::new("db", 1, ServiceBehavior::leaf(0.002, 2048.0)),
    ];
    let workloads = vec![WorkloadSpec::get("u", "/q", 20.0).with_authority("web")];
    let mut spec = SimSpec::new(services, workloads);
    spec.config.duration = SimDuration::from_secs(3);
    spec.config.warmup = SimDuration::from_millis(500);
    Simulation::build(spec)
}

#[test]
fn fig1_every_pod_gets_a_sidecar_and_cert() {
    let sim = small_sim();
    // ingress + web x2 + db = 4 pods; control plane issued 4 certs.
    assert_eq!(sim.cluster().pod_count(), 4);
    for pod in sim.cluster().pods() {
        let cert = sim.control().cert(pod.id).expect("cert issued at deploy");
        assert!(cert.valid_at(SimTime::ZERO));
        assert!(cert
            .spiffe_id
            .contains(pod.labels.get("app").expect("app label")));
    }
}

#[test]
fn fig1_ingress_gateway_exists_and_routes_external_traffic() {
    let mut sim = small_sim();
    assert_eq!(sim.cluster().endpoints(INGRESS_SERVICE, None).len(), 1);
    let m = sim.run();
    assert!(m.world.roots_ok > 30);
    // The gateway participates in the data plane: its sidecar saw every
    // external request.
    assert!(m.fleet.inbound_requests >= m.world.roots_started);
}

#[test]
fn fig1_control_plane_config_push_reaches_sidecars() {
    // xDS-style: configure() bumps the version; sync() hands out the
    // snapshot; a sidecar applies it and ignores stale pushes.
    let mut cp = ControlPlane::new(MeshConfig::default());
    let v1 = cp.version();
    let v2 = cp.configure(|c| c.default_policy.lb = LbPolicy::PeakEwma);
    assert_eq!(v2, v1 + 1);
    let (v, cfg) = cp.sync(v1).expect("newer config available");
    assert_eq!(v, v2);
    assert_eq!(cfg.default_policy.lb, LbPolicy::PeakEwma);

    let mut sc = meshlayer::mesh::Sidecar::new(
        "web-1",
        "web",
        MeshConfig::default(),
        meshlayer::simcore::SimRng::new(5),
    );
    sc.apply_config(v, cfg);
    assert_eq!(sc.config().default_policy.lb, LbPolicy::PeakEwma);
    sc.apply_config(1, MeshConfig::default()); // stale
    assert_eq!(sc.config().default_policy.lb, LbPolicy::PeakEwma);
}

#[test]
fn fig1_telemetry_flows_to_control_plane() {
    let mut sim = small_sim();
    let m = sim.run();
    // The harness aggregates sidecar stats exactly like the control plane
    // would; cross-check one invariant: outbound requests at callers match
    // inbound requests at callees minus the roots' ingress hop (with slack
    // for requests still in flight at the horizon).
    let expected = m.fleet.outbound_requests + m.world.roots_started;
    assert!(m.fleet.inbound_requests <= expected);
    assert!(m.fleet.inbound_requests + 16 >= expected);
}

#[test]
fn fig2_stack_layers_compose() {
    // Application layer: behaviour graphs.
    let b = ServiceBehavior::leaf(0.001, 128.0);
    // Mesh layer: a sidecar consuming them indirectly via routing.
    let _ = Sampling::Always;
    // Transport layer: a connection.
    let conn = meshlayer::transport::Conn::new(
        1,
        0,
        meshlayer::netsim::NodeId(0),
        meshlayer::netsim::NodeId(1),
        meshlayer::transport::ConnConfig::default(),
    );
    assert_eq!(conn.cc_name(), "cubic");
    // Network layer: a topology.
    let mut topo = meshlayer::netsim::Topology::new();
    let a = topo.add_node("a");
    let bb = topo.add_node("b");
    topo.add_duplex(a, bb, 1_000_000_000, SimDuration::from_micros(10), || {
        Box::new(meshlayer::netsim::DropTail::new(64))
    });
    assert_eq!(topo.path(a, bb).hops(), 1);
    // Physical/engine layer: the event queue beneath it all.
    let mut q: meshlayer::simcore::EventQueue<u8> = meshlayer::simcore::EventQueue::new();
    q.push(SimTime::from_millis(1), 7);
    assert_eq!(q.pop().map(|(_, e)| e), Some(7));
    let _ = b;
}

#[test]
fn mtls_toggle_adds_latency() {
    let run = |mtls: bool| {
        let services = vec![ServiceSpec::new(
            "web",
            1,
            ServiceBehavior::leaf(0.0005, 512.0),
        )];
        let workloads = vec![WorkloadSpec::get("u", "/q", 50.0).with_authority("web")];
        let mut spec = SimSpec::new(services, workloads);
        spec.mesh.mtls = mtls;
        spec.config.duration = SimDuration::from_secs(4);
        spec.config.warmup = SimDuration::from_secs(1);
        let m = Simulation::build(spec).run();
        m.class("u").expect("ran").mean_ms
    };
    let plain = run(false);
    let mtls = run(true);
    assert!(
        mtls > plain,
        "mTLS must add measurable overhead: {plain:.3} vs {mtls:.3}"
    );
}
