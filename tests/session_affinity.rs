//! Session affinity through the full stack: the workload stamps a
//! Zipf-distributed `x-session-key`, the sidecar's RingHash policy pins
//! each key to a replica, and popular keys land consistently.

use meshlayer::cluster::{ServiceBehavior, ServiceSpec};
use meshlayer::core::{SimSpec, Simulation};
use meshlayer::mesh::LbPolicy;
use meshlayer::simcore::{SimDuration, SimRng};
use meshlayer::workload::WorkloadSpec;

fn run(policy: LbPolicy, seed: u64) -> Vec<u64> {
    // Single-tier service with 4 replicas; requests carry session keys.
    let backend = ServiceSpec::new("kv", 4, ServiceBehavior::leaf(0.001, 2048.0));
    // Emulate per-session keys by running several single-key workloads
    // (each workload stamps a constant key header — the sticky property is
    // that all of one key's requests hit one replica).
    let mut workloads = Vec::new();
    let mut rng = SimRng::new(seed);
    for k in 0..6 {
        let key = format!("user-{}", rng.below(1_000_000));
        workloads.push(
            WorkloadSpec::get(format!("sess-{k}"), "/get", 20.0)
                .with_authority("kv")
                .with_header("x-session-key", key),
        );
    }
    let mut spec = SimSpec::new(vec![backend], workloads);
    spec.mesh.default_policy.lb = policy;
    spec.config.duration = SimDuration::from_secs(4);
    spec.config.warmup = SimDuration::from_millis(500);
    let m = Simulation::build(spec).run();
    m.pods
        .iter()
        .filter(|p| p.name.starts_with("kv"))
        .map(|p| p.jobs)
        .collect()
}

#[test]
fn ring_hash_pins_sessions_to_replicas() {
    let jobs = run(LbPolicy::RingHash, 7);
    let total: u64 = jobs.iter().sum();
    assert!(total > 200, "traffic flowed: {jobs:?}");
    // 6 keys over 4 replicas: every replica's share must be a whole
    // number of key-streams (~total/6 each); in particular at least one
    // replica holds 2+ keys and shares are multiples of one stream.
    let stream = total as f64 / 6.0;
    for &j in &jobs {
        let streams = j as f64 / stream;
        let nearest = streams.round();
        assert!(
            (streams - nearest).abs() < 0.25,
            "replica load {j} is not a whole number of sessions (jobs {jobs:?})"
        );
    }
}

#[test]
fn round_robin_spreads_sessions_evenly() {
    let jobs = run(LbPolicy::RoundRobin, 7);
    let total: u64 = jobs.iter().sum();
    let mean = total as f64 / jobs.len() as f64;
    for &j in &jobs {
        assert!(
            (j as f64 - mean).abs() < mean * 0.2,
            "RR should spread evenly: {jobs:?}"
        );
    }
}

#[test]
fn ring_hash_is_deterministic_per_key() {
    let a = run(LbPolicy::RingHash, 7);
    let b = run(LbPolicy::RingHash, 7);
    assert_eq!(a, b);
}
