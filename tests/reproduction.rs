//! Reproduction smoke tests: short versions of the paper's experiments,
//! asserting the *direction* of every headline result. The full-length
//! regenerations live in `crates/bench/src/bin/`.

use meshlayer::apps::{ecommerce, elibrary, fanout, ElibraryParams};
use meshlayer::core::{Simulation, XLayerConfig};
use meshlayer::mesh::LbPolicy;
use meshlayer::simcore::SimDuration;

/// Run length for one scenario: its natural `default` seconds, capped
/// by `MESHLAYER_SECS` when set so CI can trim every suite with one
/// knob (see `scripts/ci.sh`, which uses 6 — the shortest length at
/// which every directional margin below still holds). The floor of 4
/// keeps a typo'd `MESHLAYER_SECS=1` from shrinking runs past their
/// warmup.
fn secs(default: u64) -> u64 {
    match std::env::var("MESHLAYER_SECS") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| {
                panic!("MESHLAYER_SECS is set to {v:?}, which is not a valid unsigned integer")
            })
            .clamp(4, default),
        Err(_) => default,
    }
}

fn elib_run(rps: f64, xlayer: XLayerConfig, secs: u64) -> meshlayer::core::RunMetrics {
    let params = ElibraryParams {
        ls_rps: rps,
        batch_rps: rps,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = xlayer;
    spec.config.duration = SimDuration::from_secs(secs);
    spec.config.warmup = SimDuration::from_secs(secs / 4);
    spec.config.cooldown = SimDuration::from_secs(1);
    Simulation::build(spec).run()
}

/// Fig 4's direction: at a contended load, cross-layer prioritization
/// reduces latency-sensitive p99.
#[test]
fn fig4_direction_prioritization_helps_ls_tail() {
    let base = elib_run(40.0, XLayerConfig::baseline(), secs(8));
    let opt = elib_run(40.0, XLayerConfig::paper_prototype(), secs(8));
    let b = base.class("latency-sensitive").expect("baseline ls");
    let o = opt.class("latency-sensitive").expect("optimized ls");
    assert!(b.completed > 150 && o.completed > 150);
    assert!(
        o.p99_ms < b.p99_ms,
        "optimized p99 {:.1} !< baseline p99 {:.1}",
        o.p99_ms,
        b.p99_ms
    );
    // And the improvement is material, not epsilon.
    assert!(
        b.p99_ms / o.p99_ms > 1.15,
        "speedup {:.2}x too small",
        b.p99_ms / o.p99_ms
    );
}

/// §4.3's side claim: batch p99 does not collapse under prioritization.
#[test]
fn t1_direction_batch_not_destroyed() {
    let base = elib_run(30.0, XLayerConfig::baseline(), secs(8));
    let opt = elib_run(30.0, XLayerConfig::paper_prototype(), secs(8));
    let b = base.class("batch-analytics").expect("baseline batch");
    let o = opt.class("batch-analytics").expect("optimized batch");
    // Short runs are tail-noisy; allow generous slack while still
    // catching a real starvation regression (which would multiply p99).
    assert!(
        o.p99_ms < b.p99_ms * 2.0,
        "batch p99 exploded: {:.1} -> {:.1}",
        b.p99_ms,
        o.p99_ms
    );
    assert!(
        o.completed as f64 > b.completed as f64 * 0.8,
        "batch goodput collapsed"
    );
}

/// The bottleneck link is where the contention lives (sanity for the
/// whole Fig 3 setup).
#[test]
fn bottleneck_is_the_ratings_uplink() {
    let m = elib_run(40.0, XLayerConfig::baseline(), secs(6));
    let bottleneck = m.link("ratings-1->switch").expect("bottleneck link");
    assert_eq!(bottleneck.rate_bps, 1_000_000_000);
    assert!(
        bottleneck.utilization > 0.3,
        "bottleneck only {:.0}% utilized",
        bottleneck.utilization * 100.0
    );
    // Every other link is far less utilized.
    for l in &m.links {
        if l.name != "ratings-1->switch" {
            assert!(
                l.utilization < bottleneck.utilization,
                "{} hotter than the bottleneck",
                l.name
            );
        }
    }
}

/// A2's direction: a scavenger for batch cuts LS tail latency with no
/// routing or TC changes.
#[test]
fn a2_direction_scavenger_helps() {
    let mk = |scavenger: bool| {
        let mut xl = XLayerConfig {
            classify: true,
            ..XLayerConfig::baseline()
        };
        if scavenger {
            xl = xl.with_scavenger(meshlayer::transport::CcAlgo::Ledbat);
        }
        elib_run(40.0, xl, secs(8))
    };
    let cubic = mk(false);
    let ledbat = mk(true);
    let c = cubic.class("latency-sensitive").expect("ls");
    let l = ledbat.class("latency-sensitive").expect("ls");
    assert!(
        l.p99_ms < c.p99_ms * 1.05,
        "scavenger made LS worse: {:.1} vs {:.1}",
        l.p99_ms,
        c.p99_ms
    );
}

/// A3's direction: latency-aware LB cuts the straggler tail versus
/// round robin.
#[test]
fn a3_direction_ewma_routes_around_straggler() {
    let run = |policy: LbPolicy| {
        let mut spec = fanout(1, 1, 4, 2.0, 150.0);
        spec.mesh.default_policy.lb = policy;
        spec.config.duration = SimDuration::from_secs(secs(6));
        spec.config.warmup = SimDuration::from_secs(1);
        let mut sim = Simulation::build(spec);
        let straggler = sim.cluster().endpoints("svc-c0-d0", None)[0];
        sim.cluster_mut().pod_mut(straggler).speed_factor = 8.0;
        let m = sim.run();
        m.class("fanout").expect("class").p99_ms
    };
    let rr = run(LbPolicy::RoundRobin);
    let ewma = run(LbPolicy::PeakEwma);
    assert!(
        ewma < rr * 0.6,
        "PeakEwma p99 {ewma:.1} not clearly better than RoundRobin {rr:.1}"
    );
}

/// The e-commerce scenario (§4.1) runs end to end with deep call trees.
#[test]
fn ecommerce_scenario_serves_all_four_workloads() {
    let mut spec = ecommerce(20.0, 8.0);
    spec.xlayer = XLayerConfig::paper_prototype();
    spec.config.duration = SimDuration::from_secs(secs(6));
    spec.config.warmup = SimDuration::from_secs(1);
    let m = Simulation::build(spec).run();
    for class in [
        "user-browse",
        "user-checkout",
        "ads-analytics",
        "log-collect",
    ] {
        let c = m.class(class).unwrap_or_else(|| panic!("{class} missing"));
        assert!(c.completed > 5, "{class}: only {} completed", c.completed);
    }
    // User-facing traffic is much faster than the scans.
    let browse = m.class("user-browse").expect("browse");
    let ads = m.class("ads-analytics").expect("ads");
    assert!(browse.p50_ms < ads.p50_ms);
}

/// Determinism across the whole stack at the integration level.
#[test]
fn full_stack_determinism() {
    let run = || {
        let m = elib_run(20.0, XLayerConfig::full(), secs(5));
        (
            m.events,
            m.world.roots_ok,
            m.transport.bytes_sent,
            m.class("latency-sensitive").map(|c| c.p99_ms.to_bits()),
        )
    };
    assert_eq!(run(), run());
}

/// A4's direction: hedging cuts the tail on a heavy-tailed backend.
#[test]
fn a4_direction_hedging_cuts_tail() {
    let run = |hedge: Option<SimDuration>| {
        let mut spec = fanout(1, 1, 4, 4.0, 100.0);
        for svc in &mut spec.services {
            if svc.name.starts_with("svc-") {
                for (_, b) in &mut svc.behaviors {
                    b.on_request = meshlayer::cluster::CallStep::Compute(
                        meshlayer::simcore::Dist::lognormal(0.004, 1.2),
                    );
                }
            }
        }
        spec.mesh.default_policy.hedge_after = hedge;
        spec.config.duration = SimDuration::from_secs(secs(8));
        spec.config.warmup = SimDuration::from_secs(1);
        let m = Simulation::build(spec).run();
        (m.class("fanout").expect("class").p99_ms, m.world.hedges)
    };
    let (p99_off, hedges_off) = run(None);
    let (p99_on, hedges_on) = run(Some(SimDuration::from_millis(10)));
    assert_eq!(hedges_off, 0);
    assert!(hedges_on > 20, "hedges issued: {hedges_on}");
    assert!(
        p99_on < p99_off * 0.8,
        "hedged p99 {p99_on:.1} not clearly better than {p99_off:.1}"
    );
}

/// A5's direction (§3.5): SDN congestion signals steer the mesh away
/// from a saturated access link.
#[test]
fn a5_direction_sdn_avoids_congested_link() {
    let run = |sdn: bool| {
        let mut spec = fanout(1, 1, 3, 1.0, 250.0);
        for svc in &mut spec.services {
            if svc.name.starts_with("svc-") {
                for (_, b) in &mut svc.behaviors {
                    b.response_bytes = meshlayer::simcore::Dist::constant(131_072.0);
                }
            }
        }
        spec.network.default_rate_bps = 10_000_000_000;
        spec.network = spec.network.with_pod_rate("svc-c0-d0-1", 100_000_000);
        spec.xlayer.sdn_lb = sdn;
        spec.config.duration = SimDuration::from_secs(secs(6));
        spec.config.warmup = SimDuration::from_secs(2);
        let m = Simulation::build(spec).run();
        m.class("fanout").expect("class").p90_ms
    };
    let blind = run(false);
    let informed = run(true);
    assert!(
        informed < blind * 0.5,
        "SDN-informed p90 {informed:.1} not clearly better than blind {blind:.1}"
    );
}
