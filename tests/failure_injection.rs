//! Failure-injection integration tests: the resilience machinery (§2's
//! sidecar function list — retries, outlier ejection, circuit breaking,
//! timeouts) exercised through the full simulation.

use meshlayer::cluster::{CallStep, ComputeConfig, ServiceBehavior, ServiceSpec};
use meshlayer::core::{SimSpec, Simulation};
use meshlayer::http::StatusCode;
use meshlayer::mesh::{BreakerConfig, OutlierConfig, RetryPolicy};
use meshlayer::simcore::{Dist, SimDuration};
use meshlayer::workload::WorkloadSpec;

fn two_tier(backend_replicas: u32) -> SimSpec {
    let frontend = ServiceSpec::new(
        "frontend",
        1,
        ServiceBehavior {
            on_request: CallStep::call("backend", "/get"),
            response_bytes: Dist::constant(1024.0),
        },
    );
    let backend = ServiceSpec::new(
        "backend",
        backend_replicas,
        ServiceBehavior {
            on_request: CallStep::Compute(Dist::constant(0.001)),
            response_bytes: Dist::constant(1024.0),
        },
    );
    let wl = WorkloadSpec::get("u", "/get", 50.0);
    let mut spec = SimSpec::new(vec![frontend, backend], vec![wl]);
    spec.config.duration = SimDuration::from_secs(5);
    spec.config.warmup = SimDuration::from_secs(1);
    spec
}

#[test]
fn retries_mask_a_flaky_replica() {
    // One of two backend replicas fails 30% of requests; GET retries
    // (default policy: 2 retries on 5xx) should mask most of it.
    let mut sim = Simulation::build(two_tier(2));
    let flaky = sim.cluster().endpoints("backend", None)[0];
    sim.cluster_mut().pod_mut(flaky).failure_rate = 0.3;
    let m = sim.run();
    assert!(
        m.fleet.retries > 10,
        "retries happened: {}",
        m.fleet.retries
    );
    assert!(m.fleet.resp_5xx > 0, "failures were observed upstream");
    let failure_ratio = m.world.roots_failed as f64 / m.world.roots_started.max(1) as f64;
    // Unmasked failure rate through one of two replicas would be ~15%;
    // retries should cut the end-to-end rate well below that.
    assert!(
        failure_ratio < 0.05,
        "end-to-end failure ratio {failure_ratio:.3} not masked by retries"
    );
}

#[test]
fn outlier_ejection_quarantines_a_dead_replica() {
    // One replica always fails; outlier detection must eject it so the
    // healthy replica serves nearly everything.
    let mut spec = two_tier(2);
    spec.mesh.default_policy.outlier = OutlierConfig {
        consecutive_5xx: 3,
        base_ejection: SimDuration::from_secs(30),
        max_ejection_ratio: 0.5,
    };
    let mut sim = Simulation::build(spec);
    let dead = sim.cluster().endpoints("backend", None)[0];
    sim.cluster_mut().pod_mut(dead).failure_rate = 1.0;
    let dead_name = sim.cluster().pod(dead).name.clone();
    let m = sim.run();
    let dead_jobs = m
        .pods
        .iter()
        .find(|p| p.name == dead_name)
        .map(|p| p.jobs)
        .unwrap_or(0);
    let healthy_jobs: u64 = m
        .pods
        .iter()
        .filter(|p| p.name.starts_with("backend") && p.name != dead_name)
        .map(|p| p.jobs)
        .sum();
    // After ejection kicks in, the dead pod receives almost nothing. (It
    // never executes compute anyway — failure short-circuits — so compare
    // sidecar-observed 5xx against total roots instead.)
    assert!(
        healthy_jobs > 100,
        "healthy replica took the traffic: {healthy_jobs}"
    );
    assert_eq!(dead_jobs, 0, "dead replica fails before compute");
    let failure_ratio = m.world.roots_failed as f64 / m.world.roots_started.max(1) as f64;
    assert!(
        failure_ratio < 0.1,
        "ejection + retries should mask the dead replica: {failure_ratio:.3}"
    );
}

#[test]
fn total_backend_death_fails_fast_through_breaker() {
    // Both replicas dead and retries exhausted: the breaker opens and the
    // frontend fails fast instead of hammering.
    let mut spec = two_tier(2);
    spec.mesh.default_policy.breaker = BreakerConfig {
        failure_threshold: 5,
        open_duration: SimDuration::from_secs(60),
        max_pending: 0,
    };
    spec.mesh.default_policy.retry = RetryPolicy::none();
    let mut sim = Simulation::build(spec);
    for pod in sim.cluster().endpoints("backend", None) {
        sim.cluster_mut().pod_mut(pod).failure_rate = 1.0;
    }
    let m = sim.run();
    assert!(
        m.world.roots_failed > 100,
        "everything fails: {:?}",
        m.world
    );
    assert_eq!(m.world.roots_ok, 0);
    assert!(
        m.fleet.fail_fast > 50,
        "breaker should fail-fast after opening: {}",
        m.fleet.fail_fast
    );
}

#[test]
fn per_try_timeout_turns_hangs_into_504s_or_retries() {
    // Backend compute takes 2 s; per-try timeout is 50 ms. With retries
    // disabled, requests should fail as 504 within ~overall timeout.
    let frontend = ServiceSpec::new(
        "frontend",
        1,
        ServiceBehavior {
            on_request: CallStep::call("backend", "/slow"),
            response_bytes: Dist::constant(256.0),
        },
    );
    let backend = ServiceSpec::new(
        "backend",
        1,
        ServiceBehavior {
            on_request: CallStep::Compute(Dist::constant(2.0)),
            response_bytes: Dist::constant(256.0),
        },
    )
    .with_compute(ComputeConfig {
        workers: 64,
        queue_limit: 8192,
        priority_aware: false,
    });
    let wl = WorkloadSpec::get("u", "/slow", 20.0);
    let mut spec = SimSpec::new(vec![frontend, backend], vec![wl]);
    spec.mesh.default_policy.per_try_timeout = SimDuration::from_millis(50);
    spec.mesh.default_policy.timeout = SimDuration::from_millis(500);
    spec.mesh.default_policy.retry = RetryPolicy::none();
    spec.config.duration = SimDuration::from_secs(4);
    spec.config.warmup = SimDuration::from_secs(1);
    let m = Simulation::build(spec).run();
    // The first few attempts time out; the breaker then opens on the
    // consecutive failures and the rest fail fast without attempts.
    assert!(m.world.attempt_timeouts >= 5, "{:?}", m.world);
    assert!(m.world.roots_failed > 20);
    assert_eq!(m.world.roots_ok, 0, "nothing completes under the timeout");
    assert!(
        m.fleet.fail_fast > 0,
        "breaker opened after repeated timeouts"
    );
}

#[test]
fn compute_overload_produces_503s() {
    // A tiny queue and one worker at high load: admission control rejects.
    let backend = ServiceSpec::new(
        "backend",
        1,
        ServiceBehavior {
            on_request: CallStep::Compute(Dist::constant(0.05)),
            response_bytes: Dist::constant(256.0),
        },
    )
    .with_compute(ComputeConfig {
        workers: 1,
        queue_limit: 2,
        priority_aware: false,
    });
    let wl = WorkloadSpec::get("u", "/x", 100.0).with_authority("backend");
    let mut spec = SimSpec::new(vec![backend], vec![wl]);
    spec.mesh.default_policy.retry = RetryPolicy::none();
    // Re-probe quickly so the run observes many queue-overflow 503s
    // (one per half-open probe) on top of the fail-fast shedding.
    spec.mesh.default_policy.breaker.open_duration = SimDuration::from_millis(100);
    spec.config.duration = SimDuration::from_secs(4);
    spec.config.warmup = SimDuration::from_millis(500);
    let m = Simulation::build(spec).run();
    // Early arrivals overflow the queue (503s); the breaker then opens on
    // those consecutive 503s and sheds the rest without reaching the pod.
    assert!(
        m.world.compute_rejections > 20,
        "queue overflow rejections: {:?}",
        m.world
    );
    assert!(
        m.world.roots_failed > 200,
        "overload failures: {:?}",
        m.world
    );
    assert!(m.fleet.fail_fast > 0, "breaker shed load");
    // The pod's own counter agrees.
    let pod = m.pods.iter().find(|p| p.name == "backend-1").expect("pod");
    assert!(pod.rejected > 20);
}

#[test]
fn status_surfaces_to_root() {
    // A 100%-failing single backend with no retries: roots fail with the
    // upstream's 5xx, visible in fleet counters.
    let mut spec = two_tier(1);
    spec.mesh.default_policy.retry = RetryPolicy::none();
    let mut sim = Simulation::build(spec);
    let pod = sim.cluster().endpoints("backend", None)[0];
    sim.cluster_mut().pod_mut(pod).failure_rate = 1.0;
    let m = sim.run();
    assert_eq!(m.world.roots_ok, 0);
    assert_eq!(m.world.roots_failed, m.world.roots_started);
    // Real 5xx responses were observed until the breaker opened; the rest
    // were shed locally.
    assert!(m.fleet.resp_5xx > 0);
    assert!(m.fleet.resp_5xx + m.fleet.fail_fast >= m.world.roots_failed);
    let _ = StatusCode::INTERNAL;
}
