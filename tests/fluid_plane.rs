//! Fluid traffic plane acceptance tests (DESIGN.md §14): background
//! classes running as deterministic rate flows must meet the same
//! determinism bar as per-packet traffic, conserve bytes exactly, and
//! keep the foreground latency error of the fluid approximation inside
//! the documented bound at matched load.

use meshlayer::core::{FaultKind, FaultScript, FlightOutcome, Simulation, TopoMix, TopoParams};
use meshlayer::simcore::{SimDuration, SimTime};
use std::path::PathBuf;

fn flight_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("meshlayer-fluid-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}-{}.flight", std::process::id()))
}

/// Natural seconds capped by `MESHLAYER_SECS` (the repo-wide quick-run
/// convention). The defaults here are already short — the cap only ever
/// shrinks them further, floored at 1 s so a run still happens.
fn secs(default: u64) -> u64 {
    match std::env::var("MESHLAYER_SECS") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("MESHLAYER_SECS is {v:?}, not an unsigned integer"))
            .clamp(1, default),
        Err(_) => default,
    }
}

/// A ~200-pod generated zonal world on the background-heavy mix, fluid
/// or per-packet, load scaled down so per-packet captures stay small.
fn bg_spec(mix: TopoMix, rps: f64, run_secs: u64, threads: usize) -> meshlayer::core::SimSpec {
    let mut p = TopoParams::sized(200, rps);
    p.mix = mix;
    let mut spec = p.spec();
    spec.config.duration = SimDuration::from_secs(run_secs);
    spec.config.warmup = SimDuration::from_millis(200);
    spec.config.cooldown = SimDuration::from_millis(200);
    spec.config.threads = threads;
    spec
}

/// The determinism bar with fluid flows live: a 4-thread run writes a
/// byte-identical FLTREC01 capture to the 1-thread run, and the
/// 4-thread engine replays the 1-thread capture with zero divergence.
/// `FluidUpdate` events are wire-coded and digest-folded like any
/// other, so this subsumes digest equality of the rate staircase.
#[test]
fn fluid_capture_identical_1t_vs_4t() {
    let run_secs = secs(1);
    let base_path = flight_path("fluid-1t");
    let mut rec = Simulation::build(bg_spec(TopoMix::BackgroundFluid, 2_000.0, run_secs, 1));
    rec.record_to("fluid", &base_path).expect("create capture");
    let m1 = rec.run();
    match rec.take_flight_outcome() {
        Some(FlightOutcome::Recorded(c)) => assert!(c.events > 0),
        other => panic!("expected Recorded, got {other:?}"),
    }
    assert!(m1.world.roots_started > 0, "no foreground load flowed");
    assert!(!m1.fluid.is_empty(), "no fluid classes reported");

    // The capture documents the rate staircase: a seed frame at time
    // zero, then one frame per epoch tick.
    let log = meshlayer::flightrec::FlightLog::load(&base_path).unwrap();
    assert!(
        log.fluids.len() >= 2,
        "only {} fluid frames captured",
        log.fluids.len()
    );
    assert_eq!(log.fluids[0].cause, 0, "first fluid frame must be the seed");
    assert!(log.fluids[0].demand_bps > 0);

    let par_path = flight_path("fluid-4t");
    let mut rec4 = Simulation::build(bg_spec(TopoMix::BackgroundFluid, 2_000.0, run_secs, 4));
    rec4.record_to("fluid", &par_path).expect("create capture");
    rec4.run();
    match rec4.take_flight_outcome() {
        Some(FlightOutcome::Recorded(_)) => {}
        other => panic!("expected Recorded, got {other:?}"),
    }
    let base = std::fs::read(&base_path).unwrap();
    let par = std::fs::read(&par_path).unwrap();
    assert!(
        base == par,
        "4-thread fluid capture differs from 1-thread ({} vs {} bytes)",
        par.len(),
        base.len()
    );
    std::fs::remove_file(&par_path).ok();

    let mut rep = Simulation::build(bg_spec(TopoMix::BackgroundFluid, 2_000.0, run_secs, 4));
    rep.replay_from(&base_path).expect("open capture");
    rep.run();
    match rep.take_flight_outcome() {
        Some(FlightOutcome::Replayed(r)) => {
            assert!(r.ok(), "4-thread replay diverged: {:?}", r.divergence);
            assert!(r.checked > 100, "only {} events checked", r.checked);
        }
        other => panic!("expected Replayed, got {other:?}"),
    }
    std::fs::remove_file(&base_path).ok();
}

/// End-to-end conservation under chaos: run the fluid world with a
/// link flap on a frontend replica mid-run. Per class, exactly
/// `injected == delivered + dropped`; the flap starves the flows to the
/// downed replica, so drops are non-zero and a chaos-caused re-solve
/// (cause 2) lands in the capture between the epoch ticks.
#[test]
fn fluid_conservation_holds_under_chaos() {
    let run_secs = secs(3);
    let mut spec = bg_spec(TopoMix::BackgroundFluid, 2_000.0, run_secs, 1);
    spec.chaos = Some(FaultScript::new().with(
        SimTime::from_millis(600),
        FaultKind::LinkFlap {
            service: "frontend".into(),
            replica: 0,
            up_after: SimDuration::from_millis(800),
        },
    ));
    let path = flight_path("fluid-chaos");
    let mut sim = Simulation::build(spec);
    sim.record_to("fluid-chaos", &path).expect("create capture");
    let m = sim.run();

    assert!(!m.fluid.is_empty(), "no fluid classes reported");
    let mut total_dropped = 0u64;
    for c in &m.fluid {
        assert_eq!(
            c.injected_bytes,
            c.delivered_bytes + c.dropped_bytes,
            "class {} leaks bytes",
            c.class
        );
        assert!(c.injected_bytes > 0, "class {} injected nothing", c.class);
        assert!(c.flows > 0, "class {} has no flows", c.class);
        total_dropped += c.dropped_bytes;
    }
    assert!(
        total_dropped > 0,
        "link flap on a frontend replica must starve its flows into drops"
    );

    // Link-level accounting agrees: some link carried fluid bytes, and
    // the flap's drops were charged to a link.
    let fluid_on_links: u64 = m.links.iter().map(|l| l.fluid_bytes).sum();
    let drops_on_links: u64 = m.links.iter().map(|l| l.fluid_drop_bytes).sum();
    assert!(fluid_on_links > 0, "no link carried fluid bytes");
    assert_eq!(
        drops_on_links, total_dropped,
        "link drop accounting disagrees with per-class totals"
    );

    // The capture shows the chaos-caused re-solves (inject + clear).
    let log = meshlayer::flightrec::FlightLog::load(&path).unwrap();
    let chaos_solves = log.fluids.iter().filter(|f| f.cause == 2).count();
    assert!(
        chaos_solves >= 2,
        "expected chaos-caused fluid re-solves at flap inject and clear, saw {chaos_solves}"
    );
    std::fs::remove_file(&path).ok();
}

/// The headline trade at matched load: the fluid world processes far
/// fewer events than the all-packet world offering the identical mix,
/// while the per-packet foreground classes (browse, checkout) see only
/// the bounded latency shift documented in EXPERIMENTS.md — the fluid
/// background still consumes link capacity inside the qdisc model, it
/// just stops paying per-packet event costs.
#[test]
fn fluid_matches_packet_foreground_within_documented_bound() {
    let run_secs = secs(2);
    let rps = 4_000.0;
    let m_pkt = Simulation::build(bg_spec(TopoMix::BackgroundPacket, rps, run_secs, 1)).run();
    let m_fl = Simulation::build(bg_spec(TopoMix::BackgroundFluid, rps, run_secs, 1)).run();

    // Event-count savings: the background is 85% of offered requests
    // (and ~99% of offered bytes), so the fluid world must process well
    // under half the events at matched load. The full-scale sweep in
    // EXPERIMENTS.md shows ≥5× at 10⁵ RPS; this short low-rate smoke
    // asserts the direction with margin.
    assert!(
        m_fl.events * 2 < m_pkt.events,
        "fluid world processed {} events vs {} per-packet — background \
         classes are still generating packets",
        m_fl.events,
        m_pkt.events
    );
    assert!(m_fl.fluid.iter().any(|c| c.delivered_bytes > 0));
    assert!(
        m_pkt.fluid.is_empty(),
        "per-packet world reported fluid classes"
    );

    // Foreground latency error of the fluid approximation, documented
    // in EXPERIMENTS.md ("Fluid vs per-packet"): at matched load the
    // foreground p50 stays within 15% or 200µs (whichever is larger),
    // and p99 within 25% or 1ms. The fluid side elides the background's
    // downstream fan-out, so it under-models queueing — the bound is
    // the price of the ≥5× event cut.
    for class in ["browse", "checkout"] {
        let find = |m: &meshlayer::core::RunMetrics| {
            m.classes
                .iter()
                .find(|c| c.class == class)
                .unwrap_or_else(|| panic!("{class} summary missing"))
                .clone()
        };
        let pkt = find(&m_pkt);
        let fl = find(&m_fl);
        assert!(pkt.completed > 0 && fl.completed > 0, "{class} idle");
        // Measured numbers for the EXPERIMENTS.md table (run with
        // `--nocapture` in release to regenerate them).
        eprintln!(
            "{class}: packet p50={:.3}ms p99={:.3}ms | fluid p50={:.3}ms p99={:.3}ms \
             (events {} vs {})",
            pkt.p50_ms, pkt.p99_ms, fl.p50_ms, fl.p99_ms, m_pkt.events, m_fl.events
        );
        let p50_tol = (0.15 * pkt.p50_ms).max(0.2);
        let p99_tol = (0.25 * pkt.p99_ms).max(1.0);
        assert!(
            (fl.p50_ms - pkt.p50_ms).abs() <= p50_tol,
            "{class} p50 {:.3}ms (fluid) vs {:.3}ms (packet): outside the \
             documented bound ({:.3}ms)",
            fl.p50_ms,
            pkt.p50_ms,
            p50_tol
        );
        assert!(
            (fl.p99_ms - pkt.p99_ms).abs() <= p99_tol,
            "{class} p99 {:.3}ms (fluid) vs {:.3}ms (packet): outside the \
             documented bound ({:.3}ms)",
            fl.p99_ms,
            pkt.p99_ms,
            p99_tol
        );
    }
}
