//! Property-based tests over the whole simulation: conservation
//! invariants that must hold for *any* small random application under
//! any optimization mix.

use meshlayer::cluster::{CallStep, ServiceBehavior, ServiceSpec};
use meshlayer::core::{Classifier, Priority, SimSpec, Simulation, XLayerConfig};
use meshlayer::simcore::{Dist, SimDuration};
use meshlayer::workload::WorkloadSpec;
use proptest::prelude::*;

/// Build a random 1..=3-tier chain app.
fn random_spec(
    tiers: usize,
    replicas: u32,
    rps: f64,
    svc_ms: f64,
    resp_kb: f64,
    xlayer_idx: usize,
    seed: u64,
) -> SimSpec {
    let mut services = Vec::new();
    for t in 0..tiers {
        let behavior = if t + 1 < tiers {
            ServiceBehavior {
                on_request: CallStep::Seq(vec![
                    CallStep::Compute(Dist::exp(svc_ms / 1000.0)),
                    CallStep::call(format!("tier{}", t + 1), "/x"),
                ]),
                response_bytes: Dist::constant(resp_kb * 1024.0),
            }
        } else {
            ServiceBehavior {
                on_request: CallStep::Compute(Dist::exp(svc_ms / 1000.0)),
                response_bytes: Dist::constant(resp_kb * 1024.0),
            }
        };
        services.push(ServiceSpec::new(format!("tier{t}"), replicas, behavior));
    }
    let wl = WorkloadSpec::get("w", "/x", rps).with_authority("tier0");
    let mut spec = SimSpec::new(services, vec![wl]);
    spec.classifier = Classifier::new().route("/", Priority::High);
    spec.xlayer = [
        XLayerConfig::baseline(),
        XLayerConfig::paper_prototype(),
        XLayerConfig::full(),
    ][xlayer_idx % 3];
    spec.config.seed = seed;
    spec.config.duration = SimDuration::from_secs(2);
    spec.config.warmup = SimDuration::from_millis(300);
    spec.config.cooldown = SimDuration::from_millis(200);
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants that hold for any app/config: accounting conservation,
    /// no stuck requests under generous timeouts, sane histograms.
    #[test]
    fn simulation_conservation(
        tiers in 1usize..4,
        replicas in 1u32..4,
        rps in 5.0f64..60.0,
        svc_ms in 0.1f64..5.0,
        resp_kb in 0.5f64..64.0,
        xlayer_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let spec = random_spec(tiers, replicas, rps, svc_ms, resp_kb, xlayer_idx, seed);
        let m = Simulation::build(spec).run();
        let w = &m.world;
        // Every root either completed, failed, or was still in flight at
        // the horizon (completions can't exceed starts).
        prop_assert!(w.roots_ok + w.roots_failed <= w.roots_started);
        // With 15s timeouts and a 2s run, nothing should *fail*.
        prop_assert_eq!(w.roots_failed, 0, "unexpected failures: {:?}", w);
        // The vast majority complete within the horizon.
        prop_assert!(
            w.roots_ok as f64 >= w.roots_started as f64 * 0.9,
            "too many stuck: {:?}", w
        );
        // Sidecar accounting: every inbound is either a root's ingress
        // arrival or some sidecar's outbound; requests still in flight at
        // the horizon make it an inequality with small slack.
        prop_assert!(m.fleet.inbound_requests <= m.fleet.outbound_requests + w.roots_started);
        prop_assert!(
            m.fleet.inbound_requests + 64 >= m.fleet.outbound_requests + w.roots_started,
            "too many undelivered outbound requests: {:?} fleet {:?}", w, m.fleet
        );
        // Per-hop RPC count: every *completed* root traversed `tiers` call
        // edges; roots in flight at the horizon may not have spawned all
        // of theirs yet.
        prop_assert!(w.rpcs <= w.roots_started * tiers as u64);
        prop_assert!(w.rpcs >= w.roots_ok * tiers as u64);
        // Latency histogram sanity.
        if let Some(c) = m.class("w") {
            prop_assert!(c.p50_ms <= c.p90_ms + 1e-9);
            prop_assert!(c.p90_ms <= c.p99_ms + 1e-9);
            prop_assert!(c.p99_ms <= c.max_ms + 1e-9);
            prop_assert!(c.mean_ms > 0.0);
        }
        // Transport: bytes acked never exceed bytes sent.
        prop_assert!(m.transport.bytes_sent >= 1);
    }

    /// Determinism for arbitrary specs: same seed, same world.
    #[test]
    fn simulation_determinism(seed in 0u64..500, xlayer_idx in 0usize..3) {
        let run = || {
            let spec = random_spec(2, 2, 20.0, 1.0, 8.0, xlayer_idx, seed);
            let m = Simulation::build(spec).run();
            (m.events, m.world.roots_ok, m.transport.bytes_sent)
        };
        prop_assert_eq!(run(), run());
    }
}
