//! Property-based tests over the whole simulation: conservation
//! invariants that must hold for *any* small random application under
//! any optimization mix, plus flight-recorder guarantees (byte-identical
//! captures, zero-divergence replay, damage detection).

use meshlayer::apps::{ecommerce, elibrary, fanout, ElibraryParams};
use meshlayer::cluster::{CallStep, ServiceBehavior, ServiceSpec};
use meshlayer::core::{Classifier, FlightOutcome, Priority, SimSpec, Simulation, XLayerConfig};
use meshlayer::flightrec::{LogReader, Record, ReplayReport};
use meshlayer::simcore::{Dist, SimDuration};
use meshlayer::workload::WorkloadSpec;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Build a random 1..=3-tier chain app.
fn random_spec(
    tiers: usize,
    replicas: u32,
    rps: f64,
    svc_ms: f64,
    resp_kb: f64,
    xlayer_idx: usize,
    seed: u64,
) -> SimSpec {
    let mut services = Vec::new();
    for t in 0..tiers {
        let behavior = if t + 1 < tiers {
            ServiceBehavior {
                on_request: CallStep::Seq(vec![
                    CallStep::Compute(Dist::exp(svc_ms / 1000.0)),
                    CallStep::call(format!("tier{}", t + 1), "/x"),
                ]),
                response_bytes: Dist::constant(resp_kb * 1024.0),
            }
        } else {
            ServiceBehavior {
                on_request: CallStep::Compute(Dist::exp(svc_ms / 1000.0)),
                response_bytes: Dist::constant(resp_kb * 1024.0),
            }
        };
        services.push(ServiceSpec::new(format!("tier{t}"), replicas, behavior));
    }
    let wl = WorkloadSpec::get("w", "/x", rps).with_authority("tier0");
    let mut spec = SimSpec::new(services, vec![wl]);
    spec.classifier = Classifier::new().route("/", Priority::High);
    spec.xlayer = [
        XLayerConfig::baseline(),
        XLayerConfig::paper_prototype(),
        XLayerConfig::full(),
    ][xlayer_idx % 3];
    spec.config.seed = seed;
    spec.config.duration = SimDuration::from_secs(2);
    spec.config.warmup = SimDuration::from_millis(300);
    spec.config.cooldown = SimDuration::from_millis(200);
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants that hold for any app/config: accounting conservation,
    /// no stuck requests under generous timeouts, sane histograms.
    #[test]
    fn simulation_conservation(
        tiers in 1usize..4,
        replicas in 1u32..4,
        rps in 5.0f64..60.0,
        svc_ms in 0.1f64..5.0,
        resp_kb in 0.5f64..64.0,
        xlayer_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let spec = random_spec(tiers, replicas, rps, svc_ms, resp_kb, xlayer_idx, seed);
        let m = Simulation::build(spec).run();
        let w = &m.world;
        // Every root either completed, failed, or was still in flight at
        // the horizon (completions can't exceed starts).
        prop_assert!(w.roots_ok + w.roots_failed <= w.roots_started);
        // With 15s timeouts and a 2s run, nothing should *fail*.
        prop_assert_eq!(w.roots_failed, 0, "unexpected failures: {:?}", w);
        // The vast majority complete within the horizon.
        prop_assert!(
            w.roots_ok as f64 >= w.roots_started as f64 * 0.9,
            "too many stuck: {:?}", w
        );
        // Sidecar accounting: every inbound is either a root's ingress
        // arrival or some sidecar's outbound; requests still in flight at
        // the horizon make it an inequality with small slack.
        prop_assert!(m.fleet.inbound_requests <= m.fleet.outbound_requests + w.roots_started);
        prop_assert!(
            m.fleet.inbound_requests + 64 >= m.fleet.outbound_requests + w.roots_started,
            "too many undelivered outbound requests: {:?} fleet {:?}", w, m.fleet
        );
        // Per-hop RPC count: every *completed* root traversed `tiers` call
        // edges; roots in flight at the horizon may not have spawned all
        // of theirs yet.
        prop_assert!(w.rpcs <= w.roots_started * tiers as u64);
        prop_assert!(w.rpcs >= w.roots_ok * tiers as u64);
        // Latency histogram sanity.
        if let Some(c) = m.class("w") {
            prop_assert!(c.p50_ms <= c.p90_ms + 1e-9);
            prop_assert!(c.p90_ms <= c.p99_ms + 1e-9);
            prop_assert!(c.p99_ms <= c.max_ms + 1e-9);
            prop_assert!(c.mean_ms > 0.0);
        }
        // Transport: bytes acked never exceed bytes sent.
        prop_assert!(m.transport.bytes_sent >= 1);
    }

    /// Determinism for arbitrary specs: same seed, same world.
    #[test]
    fn simulation_determinism(seed in 0u64..500, xlayer_idx in 0usize..3) {
        let run = || {
            let spec = random_spec(2, 2, 20.0, 1.0, 8.0, xlayer_idx, seed);
            let m = Simulation::build(spec).run();
            (m.events, m.world.roots_ok, m.transport.bytes_sent)
        };
        prop_assert_eq!(run(), run());
    }
}

/// The exact shrunk configuration from the committed
/// `prop_sim.proptest-regressions` entry (`cc f2b73130…`): a 3-tier
/// chain with single replicas at ~24.7 rps, ~3.9 ms exponential service
/// time, tiny responses, baseline x-layer, seed 570. Triage: the
/// config passes every `simulation_conservation` invariant on current
/// code, so the committed seed is stale (the failure it caught has
/// since been fixed). Kept as a named test so that exact configuration
/// re-runs on every `cargo test` — the harness does not re-read the
/// regression file itself.
#[test]
fn regression_f2b73130_three_tier_single_replica() {
    let spec = random_spec(3, 1, 24.68777765203335, 3.911213300492541, 0.5, 0, 570);
    let m = Simulation::build(spec).run();
    let w = &m.world;
    assert!(w.roots_ok + w.roots_failed <= w.roots_started);
    assert_eq!(w.roots_failed, 0, "unexpected failures: {w:?}");
    assert!(
        w.roots_ok as f64 >= w.roots_started as f64 * 0.9,
        "too many stuck: {w:?}"
    );
    assert!(m.fleet.inbound_requests <= m.fleet.outbound_requests + w.roots_started);
    assert!(
        m.fleet.inbound_requests + 64 >= m.fleet.outbound_requests + w.roots_started,
        "too many undelivered outbound requests: {w:?} fleet {:?}",
        m.fleet
    );
    assert!(w.rpcs <= w.roots_started * 3);
    assert!(w.rpcs >= w.roots_ok * 3);
    let c = m.class("w").expect("workload class present");
    assert!(c.p50_ms <= c.p90_ms + 1e-9);
    assert!(c.p90_ms <= c.p99_ms + 1e-9);
    assert!(c.p99_ms <= c.max_ms + 1e-9);
    assert!(c.mean_ms > 0.0);
    assert!(m.transport.bytes_sent >= 1);
}

// ---------------------------------------------------------------------
// Flight recorder: capture determinism, replay, damage detection
// ---------------------------------------------------------------------

fn flight_path(name: &str) -> PathBuf {
    std::env::temp_dir()
        .join("meshlayer-flight-tests")
        .join(name)
}

/// Shrink an app spec so full-event capture stays fast.
fn shorten(mut spec: SimSpec) -> SimSpec {
    spec.config.duration = SimDuration::from_secs(2);
    spec.config.warmup = SimDuration::from_millis(300);
    spec.config.cooldown = SimDuration::from_millis(200);
    spec
}

fn record_run(spec: SimSpec, path: &Path) {
    let mut sim = Simulation::build(spec);
    sim.record_to("test", path).expect("create capture");
    sim.run();
    match sim.take_flight_outcome() {
        Some(FlightOutcome::Recorded(_)) => {}
        other => panic!("expected a recording, got {other:?}"),
    }
}

fn replay_run(spec: SimSpec, path: &Path) -> ReplayReport {
    let mut sim = Simulation::build(spec);
    sim.replay_from(path).expect("open capture");
    sim.run();
    match sim.take_flight_outcome() {
        Some(FlightOutcome::Replayed(report)) => report,
        other => panic!("expected a replay report, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Two captures of the same spec+seed are byte-identical files —
    /// determinism down to the serialized event/packet/decision streams.
    #[test]
    fn flight_capture_byte_identical(seed in 0u64..200, xlayer_idx in 0usize..3) {
        let a = flight_path(&format!("ident-a-{seed}-{xlayer_idx}.flight"));
        let b = flight_path(&format!("ident-b-{seed}-{xlayer_idx}.flight"));
        record_run(random_spec(2, 2, 20.0, 1.0, 8.0, xlayer_idx, seed), &a);
        record_run(random_spec(2, 2, 20.0, 1.0, 8.0, xlayer_idx, seed), &b);
        let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        prop_assert!(ba == bb, "captures differ: {} vs {} bytes", ba.len(), bb.len());
    }
}

type SpecFn = fn() -> SimSpec;

#[test]
fn flight_replay_zero_divergence_across_apps() {
    let apps: [(&str, SpecFn); 3] = [
        ("elibrary", || {
            let params = ElibraryParams {
                ls_rps: 20.0,
                batch_rps: 10.0,
                ..ElibraryParams::default()
            };
            let mut spec = elibrary(&params);
            spec.xlayer = XLayerConfig::paper_prototype();
            spec
        }),
        ("ecommerce", || ecommerce(20.0, 5.0)),
        ("fanout", || fanout(2, 1, 3, 2.0, 50.0)),
    ];
    for (name, build) in apps {
        let path = flight_path(&format!("replay-{name}.flight"));
        record_run(shorten(build()), &path);
        let report = replay_run(shorten(build()), &path);
        assert!(report.ok(), "{name} diverged:\n{}", report.render());
        assert!(
            report.checked > 100,
            "{name}: only {} events",
            report.checked
        );
        assert!(report.render().contains("0 divergences"));
    }
}

// ---------------------------------------------------------------------
// Sharded engine: thread count changes nothing observable
// ---------------------------------------------------------------------

/// The three apps the sharded-engine identity bar is measured on:
/// e-library (the paper's running example), the fig3-topology app
/// (e-library at its default paper parameters), and the a2-scavenger
/// app (classification + LEDBAT scavenger batch transport).
fn shard_apps() -> [(&'static str, SpecFn); 3] {
    [
        ("elibrary", || {
            let params = ElibraryParams {
                ls_rps: 20.0,
                batch_rps: 10.0,
                ..ElibraryParams::default()
            };
            let mut spec = elibrary(&params);
            spec.xlayer = XLayerConfig::paper_prototype();
            spec
        }),
        ("fig3-topology", || {
            let mut spec = elibrary(&ElibraryParams::default());
            spec.xlayer = XLayerConfig::paper_prototype();
            spec
        }),
        ("a2-scavenger", || {
            let mut spec = elibrary(&ElibraryParams {
                ls_rps: 20.0,
                batch_rps: 20.0,
                ..ElibraryParams::default()
            });
            spec.xlayer = XLayerConfig {
                classify: true,
                scavenger_batch: true,
                ..XLayerConfig::baseline()
            };
            spec
        }),
    ]
}

/// `RunMetrics` serialized with the host-dependent wall-clock fields
/// (the loop's `wall_ns` and the per-event profile's wall times) zeroed
/// — everything else must be bit-identical across engine thread counts.
fn metrics_fingerprint(m: &meshlayer::core::RunMetrics) -> String {
    let json = serde_json::to_string(m).expect("serializable metrics");
    let key = "\"wall_ns\":";
    let mut out = String::with_capacity(json.len());
    let mut rest = json.as_str();
    while let Some(i) = rest.find(key) {
        let after = i + key.len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let end = tail
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// An N-thread run (N ∈ {2, 4, 8}) produces a byte-identical FLTREC01
/// capture — and identical `RunMetrics` — to the 1-thread run, on all
/// three identity apps.
#[test]
fn sharded_capture_byte_identical_across_thread_counts() {
    for (name, build) in shard_apps() {
        let base_path = flight_path(&format!("shard-{name}-1t.flight"));
        let base_metrics = {
            let mut spec = shorten(build());
            spec.config.threads = 1;
            let mut sim = Simulation::build(spec);
            sim.record_to("test", &base_path).expect("create capture");
            let m = sim.run();
            match sim.take_flight_outcome() {
                Some(FlightOutcome::Recorded(_)) => {}
                other => panic!("expected a recording, got {other:?}"),
            }
            m
        };
        let base_bytes = std::fs::read(&base_path).unwrap();
        let base_print = metrics_fingerprint(&base_metrics);
        for threads in [2usize, 4, 8] {
            let path = flight_path(&format!("shard-{name}-{threads}t.flight"));
            let mut spec = shorten(build());
            spec.config.threads = threads;
            let mut sim = Simulation::build(spec);
            sim.record_to("test", &path).expect("create capture");
            let m = sim.run();
            match sim.take_flight_outcome() {
                Some(FlightOutcome::Recorded(_)) => {}
                other => panic!("expected a recording, got {other:?}"),
            }
            let bytes = std::fs::read(&path).unwrap();
            assert!(
                bytes == base_bytes,
                "{name}: {threads}-thread capture differs from 1-thread \
                 ({} vs {} bytes)",
                bytes.len(),
                base_bytes.len()
            );
            assert_eq!(
                metrics_fingerprint(&m),
                base_print,
                "{name}: {threads}-thread RunMetrics differ from 1-thread"
            );
        }
    }
}

/// A capture recorded by the sequential engine replays with zero
/// divergence under the 4-thread sharded engine.
#[test]
fn sharded_replay_of_sequential_capture() {
    let (name, build) = shard_apps()[0];
    let path = flight_path(&format!("shard-replay-{name}.flight"));
    let mut rec_spec = shorten(build());
    rec_spec.config.threads = 1;
    record_run(rec_spec, &path);
    let mut replay_spec = shorten(build());
    replay_spec.config.threads = 4;
    let report = replay_run(replay_spec, &path);
    assert!(
        report.ok(),
        "4-thread replay of 1-thread capture diverged:\n{}",
        report.render()
    );
    assert!(report.checked > 100, "only {} events", report.checked);
}

#[test]
fn flight_replay_detects_truncation() {
    let spec = || shorten(fanout(2, 1, 3, 2.0, 50.0));
    let path = flight_path("truncate.flight");
    record_run(spec(), &path);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();
    let report = replay_run(spec(), &path);
    let rendered = report.render();
    let d = report.divergence.expect("truncated capture must diverge");
    assert!(
        rendered.contains("DIVERGENCE at event"),
        "render lacks location:\n{rendered}"
    );
    // The cut is past warmup, so plenty of the prefix still matched.
    assert!(report.checked > 0, "no events matched before the cut");
    assert!(d.index >= report.checked);
}

#[test]
fn flight_replay_locates_corrupted_record() {
    let spec = || shorten(fanout(2, 1, 3, 2.0, 50.0));
    let path = flight_path("corrupt.flight");
    record_run(spec(), &path);

    // Find the frame holding event #200 and flip one payload byte.
    let target_seq = 200u64;
    let mut frame_offset = None;
    let mut reader = LogReader::open(&path).unwrap();
    while let Some((offset, rec)) = reader.next().unwrap() {
        if let Record::Event(e) = rec {
            if e.seq == target_seq {
                frame_offset = Some(offset);
                break;
            }
        }
    }
    let offset = frame_offset.expect("run long enough to hold event #200") as usize;
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[offset + 5] ^= 0xff; // first payload byte (after tag u8 + len u32)
    std::fs::write(&path, &bytes).unwrap();

    // Replay must flag exactly that event: the 200 intact frames before
    // it all match, then the checksum failure surfaces as a located
    // divergence with the live event's sim time attached.
    let report = replay_run(spec(), &path);
    let rendered = report.render();
    let d = report.divergence.expect("corrupted capture must diverge");
    assert_eq!(d.index, target_seq, "wrong location:\n{rendered}");
    assert_eq!(report.checked, target_seq);
    assert!(d.reason.contains("checksum"), "reason: {}", d.reason);
    assert!(
        rendered.contains("DIVERGENCE at event 200 (t="),
        "render lacks index/time:\n{rendered}"
    );
    assert!(d.t_ns > 0, "divergence carries the sim time");
}
