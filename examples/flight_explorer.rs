//! Flight-recorder explorer: record an e-library run (every engine
//! event, every packet queue operation, every sidecar decision), then
//! replay the identical simulation against the capture to prove
//! determinism, and finally dump one request's full life — mesh
//! decisions, message bindings and per-packet queue ops merged into a
//! single timeline ordered by simulated time, plus the latency-
//! provenance waterfall decomposing that request's end-to-end latency
//! into per-layer components that sum exactly to the recorded total.
//!
//! ```sh
//! cargo run --release --example flight_explorer
//! ```
//!
//! The capture lands under `MESHLAYER_OUT` (default `results/`).

use meshlayer::apps::{elibrary, ElibraryParams};
use meshlayer::core::{FlightOutcome, SimSpec, Simulation, XLayerConfig};
use meshlayer::flightrec::FlightLog;
use meshlayer::simcore::SimDuration;
use std::path::PathBuf;

fn spec() -> SimSpec {
    let params = ElibraryParams {
        ls_rps: 30.0,
        batch_rps: 30.0,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = XLayerConfig::paper_prototype();
    spec.config.duration = SimDuration::from_secs(4);
    spec.config.warmup = SimDuration::from_secs(1);
    spec
}

fn main() {
    let out = std::env::var("MESHLAYER_OUT").unwrap_or_else(|_| "results".into());
    let path = PathBuf::from(out).join("flight_explorer.flight");

    // ---- record -----------------------------------------------------
    let mut rec_sim = Simulation::build(spec());
    rec_sim
        .record_to("flight_explorer", &path)
        .expect("create capture file");
    let metrics = rec_sim.run();
    match rec_sim.take_flight_outcome() {
        Some(FlightOutcome::Recorded(c)) => println!(
            "recorded {}: {} events, {} packets, {} decisions, {} msg-binds\n",
            path.display(),
            c.events,
            c.packets,
            c.decisions,
            c.binds
        ),
        other => panic!("expected a recording, got {other:?}"),
    }
    println!("{}", metrics.render());

    // ---- replay: same spec, same seed, checked event-by-event -------
    let mut sim = Simulation::build(spec());
    sim.replay_from(&path).expect("open capture for replay");
    sim.run();
    match sim.take_flight_outcome() {
        Some(FlightOutcome::Replayed(report)) => {
            print!("{}", report.render());
            assert!(report.ok(), "replay diverged");
        }
        other => panic!("expected a replay report, got {other:?}"),
    }

    // ---- explore: one request's life across all three streams -------
    let log = FlightLog::load(&path).expect("load capture");
    println!("\n{}", log.summary());
    let ids = log.request_ids();
    println!("{} correlated requests; dumping the first:\n", ids.len());
    if let Some(rid) = ids.first() {
        print!("{}", log.dump_request(rid).expect("request in log"));

        // ---- latency provenance: where did this request's time go? --
        let provs = rec_sim.request_provenance();
        match provs.iter().find(|p| &p.request_id == rid) {
            Some(p) => {
                println!();
                print!("{}", meshlayer::prof::render_waterfall(p));
                assert_eq!(
                    p.breakdown.sum(),
                    p.total_ns,
                    "provenance components must sum to the e2e latency"
                );
            }
            // The first correlated request may have completed inside
            // warmup (provenance records only measured completions);
            // fall back to any recorded one so the waterfall prints.
            None => {
                if let Some(p) = provs.first() {
                    println!(
                        "\n(request {rid} completed during warmup; \
                              showing {} instead)",
                        p.request_id
                    );
                    print!("{}", meshlayer::prof::render_waterfall(p));
                }
            }
        }
    }
}
