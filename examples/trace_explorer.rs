//! Distributed-tracing explorer (§3.2 "better visibility"): run the
//! e-commerce app briefly with full trace sampling, then print the
//! slowest trace as a tree and its critical path — the mesh-level
//! observability the paper argues lower layers cannot reconstruct.
//!
//! The run also records a flight capture, so after the span tree we can
//! join a trace's spans with the *packet-level* records for the same
//! `x-request-id` — one unified timeline from application hop down to
//! individual queue operations on the wire.
//!
//! ```sh
//! cargo run --release --example trace_explorer
//! ```

use meshlayer::apps::ecommerce;
use meshlayer::core::Simulation;
use meshlayer::flightrec::FlightLog;
use meshlayer::mesh::Sampling;
use meshlayer::simcore::SimDuration;
use std::path::PathBuf;

fn main() {
    let out = std::env::var("MESHLAYER_OUT").unwrap_or_else(|_| "results".into());
    let flight_path = PathBuf::from(out).join("trace_explorer.flight");
    let mut spec = ecommerce(30.0, 10.0);
    spec.xlayer.classify = true;
    spec.mesh.sampling = Sampling::Always;
    spec.config.duration = SimDuration::from_secs(5);
    spec.config.warmup = SimDuration::from_secs(1);
    let mut sim = Simulation::build(spec);
    sim.record_to("trace_explorer", &flight_path)
        .expect("create flight capture");
    let metrics = sim.run();
    println!("{}", metrics.render());

    let traces = sim.tracer().traces();
    println!(
        "collected {} traces ({} spans)\n",
        traces.len(),
        metrics.spans
    );

    // Deepest trace: shows the "buried several hops deep" structure.
    if let Some(deepest) = traces.iter().max_by_key(|t| t.depth()) {
        println!("deepest trace (depth {}):", deepest.depth());
        print!("{}", deepest.render());
        println!("critical path: {}\n", deepest.critical_path().join(" -> "));
    }

    // Slowest complete trace: where did the time go?
    if let Some(slowest) = traces
        .iter()
        .filter(|t| t.root().is_some())
        .max_by_key(|t| t.duration().unwrap_or_default())
    {
        println!(
            "slowest trace ({}):",
            slowest.duration().unwrap_or_default()
        );
        print!("{}", slowest.render());
        println!("critical path: {}", slowest.critical_path().join(" -> "));

        // Join the slowest trace with the flight recorder: its spans share
        // a trace id with the sidecar decision records, which carry the
        // x-request-id that message bindings map down to individual
        // packets. Spans tell you *which hop* was slow; the packet stream
        // tells you *why* (queueing, drops, band).
        let log = FlightLog::load(&flight_path).expect("load flight capture");
        let rid = log
            .decisions
            .iter()
            .find(|d| d.trace == slowest.trace.0 && !d.request_id.is_empty())
            .map(|d| d.request_id.clone());
        match rid {
            Some(rid) => {
                println!("\nflight-recorder view of the same request ({rid}):");
                print!("{}", log.dump_request(&rid).expect("request in capture"));
            }
            None => println!(
                "\n(trace {:x} not in the flight capture — likely started in warmup)",
                slowest.trace.0
            ),
        }
    }

    // Coordinated bursty tracing (the [4]-style mode from §3.2).
    println!("\nre-running with coordinated bursty sampling (1s bursts / 3s period)...");
    let mut spec = ecommerce(30.0, 10.0);
    spec.mesh.sampling = Sampling::Bursty {
        period: SimDuration::from_secs(3),
        burst: SimDuration::from_secs(1),
    };
    spec.config.duration = SimDuration::from_secs(6);
    let mut sim = Simulation::build(spec);
    let metrics = sim.run();
    println!(
        "bursty mode captured {} spans (vs {} requests) — full detail inside bursts, nothing outside",
        metrics.spans, metrics.world.roots_started
    );
}
