//! Distributed-tracing explorer (§3.2 "better visibility"): run the
//! e-commerce app briefly with full trace sampling, then print the
//! slowest trace as a tree and its critical path — the mesh-level
//! observability the paper argues lower layers cannot reconstruct.
//!
//! ```sh
//! cargo run --release --example trace_explorer
//! ```

use meshlayer::apps::ecommerce;
use meshlayer::core::Simulation;
use meshlayer::mesh::Sampling;
use meshlayer::simcore::SimDuration;

fn main() {
    let mut spec = ecommerce(30.0, 10.0);
    spec.xlayer.classify = true;
    spec.mesh.sampling = Sampling::Always;
    spec.config.duration = SimDuration::from_secs(5);
    spec.config.warmup = SimDuration::from_secs(1);
    let mut sim = Simulation::build(spec);
    let metrics = sim.run();
    println!("{}", metrics.render());

    let traces = sim.tracer().traces();
    println!(
        "collected {} traces ({} spans)\n",
        traces.len(),
        metrics.spans
    );

    // Deepest trace: shows the "buried several hops deep" structure.
    if let Some(deepest) = traces.iter().max_by_key(|t| t.depth()) {
        println!("deepest trace (depth {}):", deepest.depth());
        print!("{}", deepest.render());
        println!("critical path: {}\n", deepest.critical_path().join(" -> "));
    }

    // Slowest complete trace: where did the time go?
    if let Some(slowest) = traces
        .iter()
        .filter(|t| t.root().is_some())
        .max_by_key(|t| t.duration().unwrap_or_default())
    {
        println!(
            "slowest trace ({}):",
            slowest.duration().unwrap_or_default()
        );
        print!("{}", slowest.render());
        println!("critical path: {}", slowest.critical_path().join(" -> "));
    }

    // Coordinated bursty tracing (the [4]-style mode from §3.2).
    println!("\nre-running with coordinated bursty sampling (1s bursts / 3s period)...");
    let mut spec = ecommerce(30.0, 10.0);
    spec.mesh.sampling = Sampling::Bursty {
        period: SimDuration::from_secs(3),
        burst: SimDuration::from_secs(1),
    };
    spec.config.duration = SimDuration::from_secs(6);
    let mut sim = Simulation::build(spec);
    let metrics = sim.run();
    println!(
        "bursty mode captured {} spans (vs {} requests) — full detail inside bursts, nothing outside",
        metrics.spans, metrics.world.roots_started
    );
}
