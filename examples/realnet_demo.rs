//! The real-socket prototype end to end: a bookinfo-like chain of actual
//! TCP services on loopback, each behind a sidecar proxy, with the
//! bottleneck pod's egress shaped to 16 Mbit/s. Two client classes send
//! concurrently; run once without and once with priority scheduling at
//! the shaped egress, and compare the high-priority class's latency.
//!
//! This is the "it works on real sockets too" companion to the
//! simulation — same headers, same propagation mechanism, real kernel.
//!
//! ```sh
//! cargo run --release --example realnet_demo
//! ```

use meshlayer::http::{Request, HDR_PRIORITY, HDR_REQUEST_ID};
use meshlayer::realnet::{
    wire, MiniService, ProxyConfig, Registry, ServiceConfig, Shaper, SidecarProxy,
};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct PodHandle {
    _app: MiniService,
    proxy: SidecarProxy,
}

fn pod(
    service: &str,
    registry: &Arc<Registry>,
    cfg: ServiceConfig,
    shaper: Option<Arc<Shaper>>,
    priority_egress: bool,
) -> PodHandle {
    let app = MiniService::spawn(cfg).expect("bind app");
    let proxy = SidecarProxy::spawn(ProxyConfig {
        name: format!("{service}-pod"),
        registry: registry.clone(),
        app_addr: Some(app.addr()),
        shaper,
        priority_egress,
        priority_routing: false,
    })
    .expect("bind proxy");
    app.set_outbound(proxy.outbound_addr());
    registry.register(service, proxy.inbound_addr(), None);
    PodHandle { _app: app, proxy }
}

/// Issue `n` requests of one class; return sorted latencies (ms).
fn client(frontend: std::net::SocketAddr, priority: &str, n: usize, gap: Duration) -> Vec<f64> {
    let mut lat = Vec::with_capacity(n);
    for i in 0..n {
        let start = Instant::now();
        let mut c = TcpStream::connect(frontend).expect("connect frontend");
        let req = Request::get("frontend", "/item")
            .with_header(HDR_REQUEST_ID, format!("{priority}-{i}"))
            .with_header(HDR_PRIORITY, priority);
        wire::write_request(&mut c, &req).expect("send");
        let resp = wire::read_response(&mut c).expect("recv");
        assert!(resp.status.is_success());
        lat.push(start.elapsed().as_secs_f64() * 1000.0);
        std::thread::sleep(gap);
    }
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    lat
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn run(with_priority_scheduling: bool) {
    let registry = Arc::new(Registry::new());
    // Bottleneck: the backend's egress is shaped to 16 Mbit/s. Priority
    // scheduling at the shaper is the TC analogue; without it, FIFO.
    let backend_shaper = Arc::new(Shaper::new(16_000_000));

    // backend responds with 48 KiB (so each response takes ~24 ms of the
    // shaped link); frontend calls it per request.
    let _backend = pod(
        "backend",
        &registry,
        ServiceConfig::leaf("backend", Duration::from_millis(1), 48 * 1024),
        Some(backend_shaper),
        with_priority_scheduling,
    );
    let frontend = pod(
        "frontend",
        &registry,
        ServiceConfig::leaf("frontend", Duration::from_millis(1), 4 * 1024)
            .with_downstream("backend"),
        None,
        with_priority_scheduling,
    );
    let addr = frontend.proxy.inbound_addr();

    // Three concurrent low-priority bulk clients keep the shaped egress
    // saturated for the whole run.
    let bulk: Vec<_> = (0..3)
        .map(|_| std::thread::spawn(move || client(addr, "low", 15, Duration::from_millis(1))))
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let high = client(addr, "high", 20, Duration::from_millis(50));
    let mut low = Vec::new();
    for b in bulk {
        low.extend(b.join().expect("bulk client"));
    }
    low.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let label = if with_priority_scheduling {
        "strict-priority egress (TC analogue)"
    } else {
        "FIFO egress (baseline)"
    };
    println!("== {label} ==");
    println!(
        "  high: p50={:>7.1}ms p90={:>7.1}ms max={:>7.1}ms   (n={})",
        percentile(&high, 0.5),
        percentile(&high, 0.9),
        high.last().unwrap(),
        high.len()
    );
    println!(
        "  low : p50={:>7.1}ms p90={:>7.1}ms max={:>7.1}ms   (n={})",
        percentile(&low, 0.5),
        percentile(&low, 0.9),
        low.last().unwrap(),
        low.len()
    );
    println!(
        "  frontend sidecar propagated {} priority headers",
        frontend
            .proxy
            .stats()
            .propagated
            .load(std::sync::atomic::Ordering::Relaxed)
    );
    println!();
}

fn main() {
    println!("real loopback-TCP mesh: client -> frontend sidecar -> frontend app");
    println!("  -> frontend sidecar (outbound, priority propagation)");
    println!("  -> backend sidecar -> backend app; backend egress shaped to 16 Mbit/s\n");
    run(false);
    run(true);
    println!("the high-priority class keeps its latency under contention only when");
    println!("the sidecar schedules its shaped egress by provenance — the paper's");
    println!("mechanism, on real sockets.");
}
