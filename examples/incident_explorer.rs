//! Incident explorer: drive the closed adaptation loop (the A6 setup —
//! a burning SLO that makes the controller flip the mesh from baseline
//! to the paper-prototype policy) with a flight capture attached, then
//! reconstruct the incident as an ordered causal timeline:
//!
//! ```text
//! burn alert -> controller decision -> policy push -> per-layer acks -> recovery
//! ```
//!
//! Every row is joined from a different source — SLO burn alerts and
//! anomaly events from the telemetry plane, policy transitions from the
//! adaptation controller, per-layer apply acks and sidecar activity from
//! the flight log — and ordered by simulated time, so the chain above is
//! *reconstructed*, not asserted.
//!
//! ```sh
//! cargo run --release --example incident_explorer
//! ```
//!
//! The capture lands under `MESHLAYER_OUT` (default `results/`).

use meshlayer::apps::{elibrary, ElibraryParams};
use meshlayer::core::{build_incident_report, AdaptationConfig, SimSpec, Simulation, XLayerConfig};
use meshlayer::flightrec::FlightLog;
use meshlayer::simcore::SimDuration;
use meshlayer::telemetry::{AnomalyKind, SloTarget, TelemetryConfig};
use std::path::PathBuf;

fn spec() -> SimSpec {
    // Contended load: at 80+80 rps the baseline mesh burns the 100 ms
    // SLO, which is what gives the controller a reason to act.
    let params = ElibraryParams {
        ls_rps: 80.0,
        batch_rps: 80.0,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = XLayerConfig::baseline();
    spec.config.duration = SimDuration::from_secs(8);
    spec.config.warmup = SimDuration::from_secs(1);
    spec.config.telemetry = TelemetryConfig::default().with_target(SloTarget::new(
        "latency-sensitive",
        SimDuration::from_millis(100),
        0.05,
    ));
    spec.adaptation = Some(AdaptationConfig::new(
        "latency-sensitive",
        XLayerConfig::paper_prototype(),
    ));
    spec
}

fn main() {
    let out = std::env::var("MESHLAYER_OUT").unwrap_or_else(|_| "results".into());
    let path = PathBuf::from(out).join("incident_explorer.flight");

    // ---- run the closed loop with the recorder attached -------------
    let mut sim = Simulation::build(spec());
    sim.record_to("incident_explorer", &path)
        .expect("create capture file");
    let metrics = sim.run();

    let log = FlightLog::load(&path).expect("read flight capture back");
    println!(
        "captured {}: {} decisions, {} anomaly frames\n",
        path.display(),
        log.decisions.len(),
        log.anomalies.len()
    );

    // ---- the anomaly frames, straight from the capture --------------
    // The detector's verdicts are flight-recorded like any other
    // decision, so a post-mortem needs only the .flight file.
    if !log.anomalies.is_empty() {
        println!("anomaly frames in the capture:");
        for a in &log.anomalies {
            let kind = AnomalyKind::from_code(a.kind).map_or("?", |k| k.label());
            let dir = if a.direction >= 0 { "up" } else { "down" };
            println!(
                "  t={:<9.3}s {:<13} {:<24} {} ({})",
                a.t_ns as f64 / 1e9,
                kind,
                a.subject,
                dir,
                a.detail
            );
        }
        println!();
    }

    // ---- the joined causal timeline ---------------------------------
    let report = build_incident_report(&metrics.telemetry, sim.policy().transitions(), Some(&log));
    print!("{}", report.render());

    assert!(
        report.complete,
        "expected the full burn->decision->push->ack->recovery chain"
    );
    println!("\nchain is complete: the policy flip is causally accounted for.");
}
