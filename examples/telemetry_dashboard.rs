//! ASCII telemetry dashboard: the time-series view of a run.
//!
//! Runs the e-library mix with an SLO on the latency-sensitive class,
//! then renders what a Grafana board over the scrape series would show:
//! per-interval p99 sparklines per class, the hottest links and compute
//! queues, trace-derived critical paths and per-service self time, and
//! any SLO burn-rate alerts that fired.
//!
//! ```sh
//! cargo run --release --example telemetry_dashboard
//! ```

use meshlayer::apps::{elibrary, ElibraryParams};
use meshlayer::core::Simulation;
use meshlayer::core::XLayerConfig;
use meshlayer::simcore::SimDuration;
use meshlayer::telemetry::{GaugeSeries, SloTarget, TelemetrySummary};

/// Render a series of values as a unicode sparkline.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                BARS[((v / max * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

fn gauge_sparkline(g: &GaugeSeries) -> String {
    let vals: Vec<f64> = g.points.iter().map(|p| p.value).collect();
    sparkline(&vals)
}

fn print_latency_panel(t: &TelemetrySummary) {
    println!(
        "── per-interval p99 latency ({}ms scrapes) ──",
        t.interval_s * 1000.0
    );
    for c in &t.classes {
        let p99: Vec<f64> = c.points.iter().map(|p| p.p99_ms).collect();
        let last = c.points.iter().rev().find(|p| p.count > 0);
        println!(
            "  {:<20} {}  p99 now {:>7.1}ms",
            c.class,
            sparkline(&p99),
            last.map_or(0.0, |p| p.p99_ms)
        );
        let errs: u64 = c.points.iter().map(|p| p.errors).sum();
        if errs > 0 {
            let ev: Vec<f64> = c.points.iter().map(|p| p.errors as f64).collect();
            println!(
                "  {:<20} {}  {} errors total",
                "  errors",
                sparkline(&ev),
                errs
            );
        }
    }
}

fn print_gauge_panel(t: &TelemetrySummary, metric: &str, title: &str, unit: &str, top: usize) {
    let mut series: Vec<&GaugeSeries> = t.gauges.iter().filter(|g| g.name == metric).collect();
    series.sort_by(|a, b| {
        let peak = |g: &GaugeSeries| g.points.iter().map(|p| p.value).fold(0.0f64, f64::max);
        peak(b)
            .partial_cmp(&peak(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let shown: Vec<_> = series
        .into_iter()
        .filter(|g| g.points.iter().any(|p| p.value > 0.0))
        .take(top)
        .collect();
    if shown.is_empty() {
        return;
    }
    println!("── {title} ──");
    for g in shown {
        println!(
            "  {:<20} {}  last {:>8.2}{unit}",
            g.instance,
            gauge_sparkline(g),
            g.last().unwrap_or(0.0)
        );
    }
}

fn main() {
    let params = ElibraryParams {
        ls_rps: 40.0,
        batch_rps: 40.0,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = XLayerConfig::paper_prototype();
    spec.config.duration = SimDuration::from_secs(8);
    spec.config.warmup = SimDuration::from_secs(1);
    spec.config.telemetry.targets.push(SloTarget::new(
        "latency-sensitive",
        SimDuration::from_millis(60),
        0.05,
    ));
    let mut sim = Simulation::build(spec);
    let m = sim.run();

    println!("{}", m.render());
    let t = &m.telemetry;
    print_latency_panel(t);
    print_gauge_panel(t, "link_utilization", "link utilization", "", 5);
    print_gauge_panel(t, "link_queue_depth", "link queue depth (pkts)", "", 4);
    print_gauge_panel(t, "pod_compute_queue", "compute queues (jobs)", "", 4);
    print_gauge_panel(t, "sidecar_retries", "sidecar retries per scrape", "", 3);

    println!("── trace analytics ({} traces) ──", m.analytics.traces);
    for p in m.analytics.critical_paths.iter().take(4) {
        println!(
            "  {:>5}x  {}  (mean {:.1}ms, max {:.1}ms)",
            p.count,
            p.path.join(" -> "),
            p.mean_ms,
            p.max_ms
        );
    }
    println!("  self time by service:");
    for s in m.analytics.self_times.iter().take(5) {
        println!(
            "    {:<16} {:>9.1}ms self / {:>9.1}ms total over {} spans",
            s.service, s.self_ms, s.total_ms, s.spans
        );
    }

    println!("── SLO burn-rate alerts ──");
    if t.alerts.is_empty() {
        println!("  none fired");
    } else {
        for a in &t.alerts {
            println!(
                "  t={:>6.2}s  {}: burn fast {:.1}x / slow {:.1}x (threshold {:.1}x)",
                a.at_s, a.class, a.fast_burn, a.slow_burn, a.threshold
            );
        }
    }
}
