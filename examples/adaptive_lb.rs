//! Adaptive replica selection in the sidecar (§3.4, ref [30]): a straggler
//! replica appears mid-fleet; latency-aware load balancing routes around
//! it while round-robin keeps feeding it.
//!
//! ```sh
//! cargo run --release --example adaptive_lb
//! ```

use meshlayer::apps::fanout;
use meshlayer::core::Simulation;
use meshlayer::mesh::LbPolicy;
use meshlayer::simcore::SimDuration;

fn main() {
    println!("4-replica backend @ 200 rps; replica 1 is 8x slower\n");
    println!("policy        | p50 (ms) | p99 (ms) | straggler share of jobs");
    for policy in [
        LbPolicy::RoundRobin,
        LbPolicy::Random,
        LbPolicy::LeastRequest,
        LbPolicy::PeakEwma,
    ] {
        let mut spec = fanout(1, 1, 4, 2.0, 200.0);
        spec.mesh.default_policy.lb = policy;
        spec.config.duration = SimDuration::from_secs(8);
        spec.config.warmup = SimDuration::from_secs(2);
        let mut sim = Simulation::build(spec);
        let straggler = sim.cluster().endpoints("svc-c0-d0", None)[0];
        sim.cluster_mut().pod_mut(straggler).speed_factor = 8.0;
        let m = sim.run();
        let c = m.class("fanout").expect("workload");
        let straggler_jobs: u64 = m
            .pods
            .iter()
            .filter(|p| p.name == "svc-c0-d0-1")
            .map(|p| p.jobs)
            .sum();
        let total: u64 = m
            .pods
            .iter()
            .filter(|p| p.name.starts_with("svc-c0-d0"))
            .map(|p| p.jobs)
            .sum();
        println!(
            "{:<13} | {:>8.2} | {:>8.2} | {:>6.1}%",
            format!("{policy:?}"),
            c.p50_ms,
            c.p99_ms,
            straggler_jobs as f64 / total.max(1) as f64 * 100.0
        );
    }
    println!("\nPeakEwma (linkerd-style) detects the straggler from response");
    println!("latencies alone and starves it — no health checks configured.");
}
