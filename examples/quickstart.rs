//! Quickstart: build a two-service mesh, run 10 simulated seconds of
//! traffic, and print what the mesh saw — five minutes from `git clone`
//! to your first latency distribution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use meshlayer::cluster::{CallStep, ServiceBehavior, ServiceSpec};
use meshlayer::core::{Classifier, Priority, SimSpec, Simulation};
use meshlayer::simcore::{Dist, SimDuration};
use meshlayer::workload::WorkloadSpec;

fn main() {
    // 1. Declare the application: a frontend fanning out to a backend.
    let frontend = ServiceSpec::new(
        "frontend",
        1,
        ServiceBehavior {
            on_request: CallStep::Seq(vec![
                CallStep::Compute(Dist::lognormal(0.002, 0.4)),
                CallStep::call("backend", "/data"),
            ]),
            response_bytes: Dist::constant(8_192.0),
        },
    );
    let backend = ServiceSpec::new(
        "backend",
        3,
        ServiceBehavior {
            on_request: CallStep::Compute(Dist::exp(0.004)),
            response_bytes: Dist::constant(16_384.0),
        },
    );

    // 2. Declare the workload: 100 user requests/second, open loop.
    let users = WorkloadSpec::get("users", "/data", 100.0);

    // 3. Wire it up. The builder deploys the pods, attaches a sidecar to
    //    each, builds the virtual network and primes the generators.
    let mut spec = SimSpec::new(vec![frontend, backend], vec![users]);
    spec.classifier = Classifier::new().route("/", Priority::High);
    spec.xlayer.classify = true;
    spec.config.duration = SimDuration::from_secs(10);
    spec.config.warmup = SimDuration::from_secs(2);
    let mut sim = Simulation::build(spec);

    println!("deployed cluster:\n{}", sim.cluster().render());
    println!("network:\n{}", sim.fabric().topology.render());

    // 4. Run and read the results.
    let metrics = sim.run();
    println!("{}", metrics.render());
    println!(
        "fleet: {} inbound, {} outbound, {} retries, {} priority propagations",
        metrics.fleet.inbound_requests,
        metrics.fleet.outbound_requests,
        metrics.fleet.retries,
        metrics.fleet.priority_propagated,
    );
    let users = metrics.class("users").expect("workload ran");
    println!(
        "users workload: n={} p50={:.2}ms p99={:.2}ms",
        users.completed, users.p50_ms, users.p99_ms
    );
}
