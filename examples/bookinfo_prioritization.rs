//! The paper's case study in one example: the e-library application with
//! a mixed latency-sensitive + batch workload, run twice — without and
//! with provenance-driven cross-layer prioritization — printing the
//! before/after latency distributions (a one-point slice of Fig 4).
//!
//! ```sh
//! cargo run --release --example bookinfo_prioritization
//! ```

use meshlayer::apps::{elibrary, ElibraryParams};
use meshlayer::core::{Simulation, XLayerConfig};
use meshlayer::simcore::SimDuration;

fn run(xlayer: XLayerConfig, label: &str) {
    let params = ElibraryParams {
        ls_rps: 40.0,
        batch_rps: 40.0,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = xlayer;
    spec.config.duration = SimDuration::from_secs(12);
    spec.config.warmup = SimDuration::from_secs(3);
    let m = Simulation::build(spec).run();
    println!("== {label} ==");
    for class in ["latency-sensitive", "batch-analytics"] {
        let c = m.class(class).expect("class ran");
        println!(
            "  {class:<18} n={:<5} p50={:>7.1}ms p90={:>7.1}ms p99={:>7.1}ms",
            c.completed, c.p50_ms, c.p90_ms, c.p99_ms
        );
    }
    if let Some(l) = m.link("ratings-1->switch") {
        println!(
            "  bottleneck (ratings uplink): {:.0}% utilized, {} drops, peak queue {} pkts",
            l.utilization * 100.0,
            l.drops,
            l.peak_queue_pkts
        );
    }
    println!();
}

fn main() {
    println!("e-library @ 40+40 rps, 1 Gbps bottleneck at ratings\n");
    run(XLayerConfig::baseline(), "w/o cross-layer optimization");
    run(
        XLayerConfig::paper_prototype(),
        "w/  cross-layer optimization (classify + subset routing + host TC)",
    );
    run(
        XLayerConfig::full(),
        "w/  everything (+ scavenger transport, DSCP fabric priority, compute prio)",
    );
    println!("see `cargo run -p meshlayer-bench --bin fig4_latency` for the full sweep");
}
