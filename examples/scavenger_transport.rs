//! Scavenger transport in the sidecar (§4.2 optimization (b), §3.4
//! "easier evolvability"): swap the batch class's congestion controller
//! to LEDBAT without touching the application, and watch the
//! latency-sensitive tail improve at the shared bottleneck.
//!
//! ```sh
//! cargo run --release --example scavenger_transport
//! ```

use meshlayer::apps::{elibrary, ElibraryParams};
use meshlayer::core::{Simulation, XLayerConfig};
use meshlayer::simcore::SimDuration;
use meshlayer::transport::CcAlgo;

fn run(scavenger: Option<CcAlgo>) {
    let params = ElibraryParams {
        ls_rps: 40.0,
        batch_rps: 40.0,
        ..ElibraryParams::default()
    };
    let mut spec = elibrary(&params);
    spec.xlayer = XLayerConfig {
        classify: true,             // priorities get their own connection pools...
        ..XLayerConfig::baseline()  // ...but share replicas and FIFO links
    };
    if let Some(algo) = scavenger {
        spec.xlayer = spec.xlayer.with_scavenger(algo);
    }
    spec.config.duration = SimDuration::from_secs(12);
    spec.config.warmup = SimDuration::from_secs(3);
    let m = Simulation::build(spec).run();
    let label = match scavenger {
        None => "batch on CUBIC (default)".to_string(),
        Some(a) => format!("batch on {a:?} (scavenger)"),
    };
    let ls = m.class("latency-sensitive").expect("ls");
    let ba = m.class("batch-analytics").expect("batch");
    println!(
        "{label:<28} LS p50={:>6.1}ms p99={:>6.1}ms | batch p50={:>7.1}ms p99={:>7.1}ms | {} drops",
        ls.p50_ms, ls.p99_ms, ba.p50_ms, ba.p99_ms, m.world.pkt_drops
    );
}

fn main() {
    println!("e-library @ 40+40 rps — transport-only prioritization (no routing/TC changes)\n");
    run(None);
    run(Some(CcAlgo::Ledbat));
    run(Some(CcAlgo::TcpLp));
    println!("\nthe scavenger yields the 1 Gbps queue to latency-sensitive flows;");
    println!("no application, routing or kernel change was required (§3.4).");
}
