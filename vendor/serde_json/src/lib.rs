//! In-tree JSON facade over the vendored `serde` [`Node`] data model.
//!
//! Provides the three entry points the workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`]. Output matches serde_json's
//! defaults closely enough for round-trip tests and external tooling:
//! objects keep insertion order, floats render via Rust's shortest
//! representation, strings are escaped per RFC 8259.

#![forbid(unsafe_code)]

use serde::{Deserialize, Node, Serialize};

/// JSON encode/decode error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_node(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_node(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let node = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(&node).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_node(n: &Node, out: &mut String, indent: Option<usize>, depth: usize) {
    match n {
        Node::Null => out.push_str("null"),
        Node::Bool(true) => out.push_str("true"),
        Node::Bool(false) => out.push_str("false"),
        Node::UInt(v) => out.push_str(&v.to_string()),
        Node::Int(v) => out.push_str(&v.to_string()),
        Node::Float(v) => write_float(*v, out),
        Node::Str(s) => write_escaped(s, out),
        Node::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_node(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Node::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_node(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // serde_json always emits a decimal point or exponent for floats.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(Error::msg(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char,
                self.pos - 1,
                got as char
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!(
                "invalid literal at byte {}, expected `{kw}`",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Node, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Node::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Node::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Node::Bool(false))
            }
            Some(b'"') => Ok(Node::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Node, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Node::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Node::Seq(items)),
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Node, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Node::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Node::Map(entries)),
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Handle surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::msg("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| Error::msg("invalid \\u escape"))?
                        };
                        s.push(c);
                    }
                    _ => return Err(Error::msg("invalid escape sequence")),
                },
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Node, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Node::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i128>()
                .map(Node::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u128>()
                .map(Node::UInt)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\u{1}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escape_parsing() {
        let back: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(back, "A\u{1F600}");
    }

    #[test]
    fn pretty_output_shape() {
        let v = vec![1u64];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1\n]");
    }

    #[test]
    fn floats_get_decimal_point() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let back: f64 = from_str("2").unwrap();
        assert!((back - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 x").is_err());
        assert!(from_str::<u64>("").is_err());
    }
}
