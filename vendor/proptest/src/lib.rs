//! In-tree property-testing harness.
//!
//! Mirrors the subset of proptest's API the test suite uses: the
//! `proptest!` macro, `prop_assert*` macros, `Strategy` for ranges /
//! regex-literal strings / tuples / `prop::collection::vec`, `any::<T>()`,
//! and `ProptestConfig::with_cases`. Generation is deterministic: each
//! test case seeds a local PRNG from the test name and case index, so
//! failures are reproducible without persistence files. No shrinking —
//! the failing inputs are printed instead.

#![forbid(unsafe_code)]

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG (splitmix64; self-contained so the harness needs no external crates)
// ---------------------------------------------------------------------------

/// Deterministic per-case random source handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Errors / config / runner
// ---------------------------------------------------------------------------

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration (subset: case count).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Drive `f` for each case with a per-case deterministic RNG.
/// Used by the expansion of [`proptest!`]; not part of the public
/// proptest API but harmless to expose.
pub fn run_cases(
    config: ProptestConfig,
    test_name: &str,
    mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for case in 0..config.cases {
        let seed = fnv1a(test_name.as_bytes()) ^ (case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
        let mut rng = TestRng::new(seed);
        if let Err(e) = f(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Keep only values for which `pred` holds (regenerating otherwise).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Transform generated values.
    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.reason);
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> U, U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);
impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.f64() as f32) * (self.end - self.start)
    }
}

/// String literals act as regex-subset strategies (as in real proptest).
/// Supported syntax: literal characters, `[...]` classes with ranges, and
/// `{m}` / `{m,n}` quantifiers on the preceding atom.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                + i;
            let class = expand_class(&chars[i + 1..close], pattern);
            i = close + 1;
            class
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("quantifier min"),
                    hi.trim().parse::<usize>().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let n = if min == max {
            min
        } else {
            min + rng.below((max - min + 1) as u64) as usize
        };
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
            for c in lo..=hi {
                out.push(char::from_u32(c).expect("class range char"));
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_num {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Matches proptest's surface syntax: an optional
/// `#![proptest_config(..)]` line followed by `#[test] fn name(arg in
/// strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a property test, failing the case (not
/// panicking) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` ({})\n  both: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), __l
            )));
        }
    }};
}

/// Everything test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Namespace alias so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..50 {
            let s = "[a-z][a-z0-9-]{0,20}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 21, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let p = "/[a-z0-9/]{0,30}".generate(&mut rng);
            assert!(p.starts_with('/'));
        }
    }

    #[test]
    fn range_strategy_bounds() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..200 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(
            n in 1usize..5,
            xs in prop::collection::vec(any::<u8>(), 0..10),
            s in "[a-c]{1,4}",
        ) {
            prop_assert!(n >= 1);
            prop_assert!(xs.len() < 10);
            prop_assert!(!s.is_empty(), "empty string from {}", "regex");
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }
}
