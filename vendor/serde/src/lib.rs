//! In-tree serde facade.
//!
//! The build environment is offline, so the workspace vendors the small
//! serde surface it actually uses: `#[derive(Serialize, Deserialize)]` on
//! non-generic structs/enums, and JSON round-trips via the sibling
//! `serde_json` facade. Serialization goes through a self-describing
//! [`Node`] tree whose JSON rendering matches serde_json's defaults
//! (externally tagged enums, transparent newtypes, maps as objects).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u128),
    /// Negative integer.
    Int(i128),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Node>),
    /// Object (insertion-ordered key/value pairs).
    Map(Vec<(String, Node)>),
}

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can render itself into a [`Node`].
pub trait Serialize {
    /// Convert to the data model.
    fn serialize(&self) -> Node;
}

/// A value reconstructible from a [`Node`].
pub trait Deserialize: Sized {
    /// Convert from the data model.
    fn deserialize(n: &Node) -> Result<Self, Error>;
}

/// Look up `key` in a map node and deserialize it (derive helper).
pub fn de_field<T: Deserialize>(n: &Node, key: &str) -> Result<T, Error> {
    match n {
        Node::Map(entries) => match entries.iter().find(|(k, _)| k == key) {
            Some((_, v)) => T::deserialize(v),
            None => Err(Error::msg(format!("missing field `{key}`"))),
        },
        _ => Err(Error::msg(format!(
            "expected object with field `{key}`, got {n:?}"
        ))),
    }
}

/// Expect a sequence of exactly `len` items (derive helper).
pub fn de_seq(n: &Node, len: usize) -> Result<&[Node], Error> {
    match n {
        Node::Seq(items) if items.len() == len => Ok(items),
        Node::Seq(items) => Err(Error::msg(format!(
            "expected sequence of {len}, got {}",
            items.len()
        ))),
        _ => Err(Error::msg(format!("expected sequence, got {n:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Node { Node::UInt(*self as u128) }
        }
        impl Deserialize for $t {
            fn deserialize(n: &Node) -> Result<Self, Error> {
                match n {
                    Node::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::msg(format!("{v} out of range for {}", stringify!($t)))),
                    Node::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::msg(format!("{v} out of range for {}", stringify!($t)))),
                    _ => Err(Error::msg(format!("expected integer, got {n:?}"))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Node {
                if *self < 0 { Node::Int(*self as i128) } else { Node::UInt(*self as u128) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(n: &Node) -> Result<Self, Error> {
                match n {
                    Node::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::msg(format!("{v} out of range for {}", stringify!($t)))),
                    Node::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::msg(format!("{v} out of range for {}", stringify!($t)))),
                    _ => Err(Error::msg(format!("expected integer, got {n:?}"))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128, usize);
impl_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Node {
        if self.is_finite() {
            Node::Float(*self)
        } else {
            Node::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        match n {
            Node::Float(v) => Ok(*v),
            Node::UInt(v) => Ok(*v as f64),
            Node::Int(v) => Ok(*v as f64),
            Node::Null => Ok(f64::NAN),
            _ => Err(Error::msg(format!("expected number, got {n:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Node {
        (*self as f64).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        f64::deserialize(n).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Node {
        Node::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        match n {
            Node::Bool(b) => Ok(*b),
            _ => Err(Error::msg(format!("expected bool, got {n:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Node {
        Node::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        match n {
            Node::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg(format!("expected string, got {n:?}"))),
        }
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Node {
        Node::Str((*self).to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Node {
        Node::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        match n {
            Node::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg(format!(
                "expected single-char string, got {n:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Node {
        match self {
            Some(v) => v.serialize(),
            None => Node::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        match n {
            Node::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        match n {
            Node::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::msg(format!("expected array, got {n:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize(&self) -> Node {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Node {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        let items = de_seq(n, N)?;
        let v: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        v.try_into()
            .map_err(|_| Error::msg("array length changed during collect"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Node {
                Node::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(n: &Node) -> Result<Self, Error> {
                const LEN: usize = [$(stringify!($t)),+].len();
                let items = de_seq(n, LEN)?;
                let mut it = items.iter();
                Ok(($($t::deserialize(it.next().expect("length checked"))?,)+))
            }
        }
    )*};
}

impl_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Node {
        // Sort keys so output is deterministic (HashMap iteration is not).
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Node::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        match n {
            Node::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::msg(format!("expected object, got {n:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Node {
        Node::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        match n {
            Node::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::msg(format!("expected object, got {n:?}"))),
        }
    }
}

impl Serialize for Node {
    fn serialize(&self) -> Node {
        self.clone()
    }
}

impl Deserialize for Node {
    fn deserialize(n: &Node) -> Result<Self, Error> {
        Ok(n.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-3i64).serialize()).unwrap(), -3);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        let f = f64::deserialize(&1.5f64.serialize()).unwrap();
        assert!((f - 1.5).abs() < 1e-12);
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(u64, String)> = Deserialize::deserialize(&v.serialize()).unwrap();
        assert_eq!(back, v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()).unwrap(), None);
        let mut m = HashMap::new();
        m.insert("k".to_string(), 7u8);
        let back: HashMap<String, u8> = Deserialize::deserialize(&m.serialize()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn range_errors() {
        assert!(u8::deserialize(&Node::UInt(300)).is_err());
        assert!(u64::deserialize(&Node::Str("x".into())).is_err());
    }
}
