//! In-tree criterion facade.
//!
//! Implements the subset of criterion's API the bench files use
//! (`benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_custom`, `black_box`, the `criterion_group!` /
//! `criterion_main!` macros) as a simple calibrated timing loop:
//! each benchmark is warmed up, an iteration count is chosen to fill
//! roughly 100 ms per sample, and the mean ns/iter over the samples is
//! printed. No statistics engine, no plots — enough to keep
//! `cargo bench` (and `cargo test --benches`) building and producing
//! comparable numbers offline.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let samples = self.sample_size;
        run_benchmark(&name.into(), samples, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finish the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the chosen number of iterations.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Hand full timing control to the closure: it receives the iteration
    /// count and returns the measured duration.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

fn run_benchmark(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: find an iteration count that takes roughly 100 ms,
    // starting from one timed iteration.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(100);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let mean_ns = total.as_nanos() as f64 / (samples as f64 * iters as f64);
    let best_ns = best.as_nanos() as f64 / iters as f64;
    println!(
        "bench {name:<40} {mean_ns:>12.1} ns/iter (best {best_ns:.1}, {iters} iters x {samples})"
    );
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` passes harness flags; a plain run
            // benches everything. Keep it simple: always run.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut hits = 0u64;
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                hits += iters;
                Duration::from_micros(iters)
            })
        });
        g.finish();
        assert!(hits > 0);
    }
}
