//! In-tree `bytes` facade.
//!
//! The workspace only needs `BytesMut` as a growable write buffer and
//! `Bytes` as a frozen read-only view, so both are thin wrappers around
//! `Vec<u8>` — no refcounted slicing, which the codebase never uses.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer (frozen [`BytesMut`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side trait, mirroring the subset of `bytes::BufMut` in use.
pub trait BufMut {
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"ab");
        b.put_u8(b'c');
        let frozen = b.freeze();
        assert_eq!(&frozen[..], b"abc");
        assert_eq!(frozen.len(), 3);
    }
}
