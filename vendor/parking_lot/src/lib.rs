//! In-tree `parking_lot` facade.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). Poisoned locks are recovered
//! via `into_inner` — a panic while holding the lock propagates anyway,
//! so the data can't be observed torn.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait_for`] can move
/// it out (std's wait API consumes the guard) and put it back. The slot
/// is `None` only during that window, never observable to callers.
pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Wait on the guard with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wait on the guard until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_millis(50));
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
