//! Derive macros for the in-tree `serde` facade.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serde-compatible surface. These derives parse the item token
//! stream by hand (no `syn`/`quote`) and emit impls of the facade's
//! `Serialize`/`Deserialize` traits against its `Node` data model, matching
//! serde_json's default representation (externally tagged enums, newtype
//! transparency, struct-as-object).
//!
//! Supported shapes — everything this workspace derives on: non-generic
//! structs (unit / tuple / named) and enums whose variants are unit, tuple
//! or struct-like.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Kinds of field lists a struct or enum variant can carry.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// One enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// The parsed derive input.
enum Item {
    Struct(Fields),
    Enum(Vec<Variant>),
}

/// Skip outer attributes (`#[...]`, including expanded doc comments) and a
/// visibility qualifier (`pub`, `pub(...)`) starting at `*i`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse a brace-group token stream of named fields into their names,
/// skipping types (tracking `<`/`>` depth so commas inside generics don't
/// split fields).
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        names.push(name.to_string());
        i += 1;
        // Expect ':' then consume the type until a top-level ','.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            i += 1;
        }
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Count the fields of a tuple struct/variant (top-level commas, angle
/// aware).
fn count_tuple_fields(group: TokenStream) -> usize {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut fields = 1usize;
    let mut angle = 0i32;
    let mut seen_tokens_in_field = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                fields += 1;
                seen_tokens_in_field = false;
                continue;
            }
            _ => {}
        }
        seen_tokens_in_field = true;
    }
    // Tolerate a trailing comma.
    if !seen_tokens_in_field {
        fields -= 1;
    }
    fields
}

/// Parse the variants of an enum body.
fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip a separating comma (and any explicit discriminant, unused
        // in this workspace).
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

/// Parse a derive input into (type name, item shape).
fn parse_item(input: TokenStream) -> (String, Item) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored derive");
    }
    let item = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Item::Struct(Fields::Unit),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    (name, item)
}

/// Emit `impl Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, item) = parse_item(input);
    let body = match &item {
        Item::Struct(Fields::Unit) => "::serde::Node::Null".to_string(),
        Item::Struct(Fields::Tuple(1)) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Item::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                .collect();
            format!("::serde::Node::Seq(::std::vec![{}])", items.join(", "))
        }
        Item::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Node::Map(::std::vec![{}])", items.join(", "))
        }
        Item::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                let arm = match &v.fields {
                    Fields::Unit => format!(
                        "{name}::{vn} => ::serde::Node::Str(::std::string::String::from(\"{vn}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{vn}(__f0) => ::serde::Node::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::serialize(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::serialize(__f{k})"))
                            .collect();
                        format!(
                            "{name}::{vn}({pats}) => ::serde::Node::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Node::Seq(::std::vec![{items}]))]),",
                            pats = pats.join(", "),
                            items = items.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let pats = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {pats} }} => ::serde::Node::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Node::Map(::std::vec![{items}]))]),",
                            items = items.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Node {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// Emit `impl Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, item) = parse_item(input);
    let body = match &item {
        Item::Struct(Fields::Unit) => {
            format!("let _ = __n;\n::std::result::Result::Ok({name})")
        }
        Item::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__n)?))")
        }
        Item::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize(&__items[{k}])?"))
                .collect();
            format!(
                "let __items = ::serde::de_seq(__n, {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Item::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(__n, \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
        Item::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                        // Also accept the {"Variant": null} form.
                        tagged_arms.push(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                    }
                    Fields::Tuple(1) => tagged_arms.push(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deserialize(&__items[{k}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vn}\" => {{ let __items = ::serde::de_seq(__inner, {n})?; ::std::result::Result::Ok({name}::{vn}({})) }}",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(__inner, \"{f}\")?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __n {{\n\
                     ::serde::Node::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Node::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         let _ = __inner;\n\
                         match __tag.as_str() {{\n\
                             {tagged}\n\
                             __other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::msg(\"invalid enum representation for {name}\")),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__n: &::serde::Node) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}
