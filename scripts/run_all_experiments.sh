#!/usr/bin/env bash
# Regenerate every figure/table of EXPERIMENTS.md at full length.
# Results land in results/ as plain text (plus the Fig 4 JSON rows).
#
# Full length takes tens of minutes; export MESHLAYER_SECS=10 for a
# quick pass.
set -euo pipefail
cd "$(dirname "$0")/.."

SECS="${MESHLAYER_SECS:-60}"
WARM="${MESHLAYER_WARMUP:-8}"
OUT=results
mkdir -p "$OUT"

cargo build --release -p meshlayer-bench

run() {
  local secs="$1" name="$2"; shift 2
  echo "== $name =="
  MESHLAYER_SECS="$secs" MESHLAYER_WARMUP="$WARM" \
    "./target/release/$name" "$@" | tee "$OUT/$name.txt"
}

run "$SECS" fig2_stack
run "$SECS" fig3_topology
run "$SECS" fig4_latency
run $((SECS / 4 + 1)) t2_overhead
run "$SECS" a1_ablation 30
run "$SECS" a2_scavenger 40
run $((SECS / 3 + 1)) a3_lb_tail
run $((SECS / 3 + 1)) a4_hedging
run $((SECS / 4 + 1)) a5_sdn

echo
echo "all experiment outputs in $OUT/"
