#!/usr/bin/env bash
# Regenerate every figure/table of EXPERIMENTS.md at full length.
# Results land in results/ as plain text (plus the Fig 4 JSON rows).
#
# Each bin also dumps telemetry artifacts with stable names into
# results/: <bin>_telemetry.json, <bin>_latency.csv, <bin>_gauges.csv,
# <bin>_metrics.prom for bin in {fig4, a1..a6}, plus fig4_spans.json
# (Zipkin-style span dump for the representative Fig 4 run).
#
# Full length takes tens of minutes; export MESHLAYER_SECS=10 for a
# quick pass. MESHLAYER_SKIP_CI=1 skips the lint/test gate.
set -euo pipefail
cd "$(dirname "$0")/.."

SECS="${MESHLAYER_SECS:-60}"
WARM="${MESHLAYER_WARMUP:-8}"
OUT=results
mkdir -p "$OUT"

if [[ "${MESHLAYER_SKIP_CI:-0}" != "1" ]]; then
  ./scripts/ci.sh
fi

cargo build --release -p meshlayer-bench

run() {
  local secs="$1" name="$2"; shift 2
  echo "== $name =="
  MESHLAYER_SECS="$secs" MESHLAYER_WARMUP="$WARM" \
    "./target/release/$name" "$@" | tee "$OUT/$name.txt"
}

run "$SECS" fig2_stack
run "$SECS" fig3_topology
run "$SECS" fig4_latency
run $((SECS / 4 + 1)) t2_overhead
run "$SECS" a1_ablation 30
run "$SECS" a2_scavenger 40
run $((SECS / 3 + 1)) a3_lb_tail
run $((SECS / 3 + 1)) a4_hedging
run $((SECS / 4 + 1)) a5_sdn
run $((SECS / 3 + 1)) a6_adaptation
run $((SECS / 2)) a7_chaos

echo
echo "all experiment outputs in $OUT/"
