#!/usr/bin/env bash
# The repo's CI gate: formatting, lints (warnings are errors), and the
# full test suite. Run before sending a PR; run_all_experiments.sh calls
# it first so experiment artifacts always come from a clean tree.
#
# MESHLAYER_CI_SKIP_TESTS=1 skips the test step (lint-only quick pass).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

if [[ "${MESHLAYER_CI_SKIP_TESTS:-0}" != "1" ]]; then
  echo "== cargo test =="
  cargo test --offline --workspace -q
fi

echo "ci: all checks passed"
