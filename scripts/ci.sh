#!/usr/bin/env bash
# The repo's CI gate: formatting, lints (warnings are errors), and the
# full test suite. Run before sending a PR; run_all_experiments.sh calls
# it first so experiment artifacts always come from a clean tree.
#
# MESHLAYER_CI_SKIP_TESTS=1 skips the test step (lint-only quick pass).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

if [[ "${MESHLAYER_CI_SKIP_TESTS:-0}" != "1" ]]; then
  echo "== cargo test =="
  # MESHLAYER_SECS caps the reproduction suite's per-scenario run
  # lengths (tests/reproduction.rs honors it); 6 is the shortest length
  # at which every directional margin still holds and cuts the suite's
  # wall clock by ~25%.
  MESHLAYER_SECS=6 cargo test --offline --workspace -q

  echo "== flight recorder: record/replay divergence smoke =="
  # Record a short canonical run on the sequential engine, replay it
  # under the 4-thread sharded engine, and require a clean
  # zero-divergence report — the executable form of the determinism
  # guarantee in DESIGN.md §6/§7/§9 (thread count changes nothing).
  flight_out="$(mktemp -d)"
  trap 'rm -rf "$flight_out"' EXIT
  MESHLAYER_OUT="$flight_out" MESHLAYER_SECS=3 MESHLAYER_WARMUP=1 \
    cargo run --offline --release -q -p meshlayer-bench --bin fig4_latency -- --record --threads 1
  replay_log="$(MESHLAYER_OUT="$flight_out" MESHLAYER_SECS=3 MESHLAYER_WARMUP=1 \
    cargo run --offline --release -q -p meshlayer-bench --bin fig4_latency -- --replay --threads 4)"
  echo "$replay_log"
  if ! grep -q "0 divergences" <<<"$replay_log"; then
    echo "ci: 4-thread replay of 1-thread capture diverged" >&2
    exit 1
  fi

  echo "== policy plane: closed-loop adaptation smoke =="
  # A short A6 run at congesting load: the SLO burn alert must fire and
  # the policy plane must converge a mid-run transition. Guards the
  # telemetry -> adaptation -> push/ack loop end to end.
  a6_log="$(MESHLAYER_OUT="$flight_out" MESHLAYER_SECS=6 MESHLAYER_WARMUP=1 \
    cargo run --offline --release -q -p meshlayer-bench --bin a6_adaptation -- 80)"
  echo "$a6_log"
  if ! grep -q "policy transition: v2" <<<"$a6_log"; then
    echo "ci: A6 observed no policy transition (adaptation loop broken)" >&2
    exit 1
  fi
  if ! grep -Eq "policy transition: v2 .*converged=[0-9]" <<<"$a6_log"; then
    echo "ci: A6 policy transition never converged" >&2
    exit 1
  fi

  echo "== incident timeline: A6 causal-chain smoke (deterministic) =="
  # meshctl incident drives the same closed loop with a flight capture
  # attached and joins burn alerts, the controller decision, the policy
  # push, per-layer acks and the recovery anomaly into one ordered
  # timeline. The full causal chain must reconstruct, and the report must
  # be byte-identical across runs (it is a pure function of the
  # deterministic run). The capture is ~1 GiB at this load; delete it
  # between runs.
  incident_a="$(MESHLAYER_OUT="$flight_out" \
    cargo run --offline --release -q --bin meshctl -- incident 80 4)"
  echo "$incident_a"
  rm -f "$flight_out/incident.flight"
  if ! grep -q "causal chain: burn-alert -> controller-decision -> policy-push -> acks([1-9][0-9]*) -> recovery \[complete\]" <<<"$incident_a"; then
    echo "ci: incident timeline did not reconstruct the full causal chain" >&2
    exit 1
  fi
  incident_b="$(MESHLAYER_OUT="$flight_out" \
    cargo run --offline --release -q --bin meshctl -- incident 80 4)"
  rm -f "$flight_out/incident.flight"
  if [[ "$incident_a" != "$incident_b" ]]; then
    echo "ci: incident timeline is not deterministic across identical runs" >&2
    diff <(echo "$incident_a") <(echo "$incident_b") >&2 || true
    exit 1
  fi

  echo "== chaos plane: all-fault-kinds record/replay + fault-rooted chain =="
  # The canonical chaos capture schedules every fault kind (crash+restart,
  # gray failure, link flap, rollback, partition) in one short run.
  # Faults are engine events, so the determinism bar is unchanged: record
  # sequentially, replay on the 4-thread sharded engine, zero divergence.
  MESHLAYER_OUT="$flight_out" MESHLAYER_SECS=3 MESHLAYER_WARMUP=1 \
    cargo run --offline --release -q -p meshlayer-bench --bin a7_chaos -- --record --threads 1
  chaos_replay="$(MESHLAYER_OUT="$flight_out" MESHLAYER_SECS=3 MESHLAYER_WARMUP=1 \
    cargo run --offline --release -q -p meshlayer-bench --bin a7_chaos -- --replay --threads 4)"
  echo "$chaos_replay"
  rm -f "$flight_out/a7_chaos.flight"
  if ! grep -q "0 divergences" <<<"$chaos_replay"; then
    echo "ci: 4-thread replay of the chaos capture diverged" >&2
    exit 1
  fi
  # meshctl chaos is the incident loop plus injected faults: the causal
  # chain must now *begin at the injected fault*, and the report must
  # stay byte-identical across runs like the fault-free one above.
  chaos_a="$(MESHLAYER_OUT="$flight_out" \
    cargo run --offline --release -q --bin meshctl -- chaos 80 4)"
  echo "$chaos_a"
  rm -f "$flight_out/chaos.flight"
  if ! grep -q "causal chain: fault-inject([1-9][0-9]*) ->" <<<"$chaos_a"; then
    echo "ci: chaos incident chain does not begin at the injected fault" >&2
    exit 1
  fi
  chaos_b="$(MESHLAYER_OUT="$flight_out" \
    cargo run --offline --release -q --bin meshctl -- chaos 80 4)"
  rm -f "$flight_out/chaos.flight"
  if [[ "$chaos_a" != "$chaos_b" ]]; then
    echo "ci: chaos incident run is not deterministic across identical runs" >&2
    diff <(echo "$chaos_a") <(echo "$chaos_b") >&2 || true
    exit 1
  fi

  echo "== telemetry plane: fleet-scale memory ceiling =="
  # ~1000 classes + pods + gauges driven through the hub for thousands
  # of scrapes: the retention pyramid must hold the footprint under a
  # fixed ceiling however long the run (O(classes × sketch size), not
  # O(run length)). 4000 scrapes ≈ 6.7 simulated minutes — past every
  # retention tier's steady state — at a quarter of the default ceiling,
  # so even a slow leak fails fast.
  cargo run --offline --release -q -p meshlayer-bench --bin telemetry_mem -- \
    --scrapes 4000 --ceiling-mib 32

  echo "== topology scale: generated-fabric smoke (sweep + record/replay) =="
  # A generated ~200-pod zonal spine-leaf fabric, MESHLAYER_SECS-capped,
  # in a DEBUG build on purpose: the arena/SoA pod state and the
  # hierarchical O(nodes+links) routing must keep even an unoptimized
  # binary inside a committed memory ceiling (DESIGN.md §13). Then the
  # same fabric is held to the flight-recorder bar: record at 1 thread,
  # replay at 4, zero divergence.
  MESHLAYER_OUT="$flight_out" MESHLAYER_SECS=2 MESHLAYER_WARMUP=1 \
    cargo run --offline -q -p meshlayer-bench --bin topo_smoke -- \
    --pods 200 --rps 2000 --rss-ceiling-mib 512
  MESHLAYER_OUT="$flight_out" MESHLAYER_SECS=2 MESHLAYER_WARMUP=1 \
    cargo run --offline --release -q -p meshlayer-bench --bin topo_smoke -- --record --threads 1
  topo_replay="$(MESHLAYER_OUT="$flight_out" MESHLAYER_SECS=2 MESHLAYER_WARMUP=1 \
    cargo run --offline --release -q -p meshlayer-bench --bin topo_smoke -- --replay --threads 4)"
  echo "$topo_replay"
  rm -f "$flight_out/topo_smoke.flight"
  if ! grep -q "0 divergences" <<<"$topo_replay"; then
    echo "ci: 4-thread replay of the generated-fabric capture diverged" >&2
    exit 1
  fi

  echo "== fluid plane: meshctl links determinism (run-twice diff) =="
  # The per-link packet-vs-fluid utilization table is a pure function of
  # the deterministic run (every column comes from simulation counters);
  # two identical invocations must produce byte-identical stdout.
  links_a="$(cargo run --offline --release -q --bin meshctl -- links 20000 2)"
  echo "$links_a"
  links_b="$(cargo run --offline --release -q --bin meshctl -- links 20000 2)"
  if [[ "$links_a" != "$links_b" ]]; then
    echo "ci: meshctl links output is not deterministic across identical runs" >&2
    diff <(echo "$links_a") <(echo "$links_b") >&2 || true
    exit 1
  fi
  if ! grep -q "fluid class" <<<"$links_a"; then
    echo "ci: meshctl links reported no fluid classes" >&2
    exit 1
  fi

  echo "== engine bench: smoke run + regression gate (1 and 4 threads) =="
  # A 2-second macro bench of the event engine at 1 and 4 engine
  # threads, gated against the checked-in baseline: hard-fails only if
  # the 1-thread events/sec drops below 80% of BENCH_engine.json (see
  # EXPERIMENTS.md, "Engine throughput"). A <1.0x 4-thread speedup on
  # these smoke sizes is expected on small hosts and only logs a WARN
  # (bench_engine prints it) — it never fails CI.
  MESHLAYER_OUT="$flight_out" MESHLAYER_SECS=2 MESHLAYER_WARMUP=1 \
    cargo run --offline --release -q -p meshlayer-bench --bin bench_engine -- \
    --smoke --threads 1,4 --gate BENCH_engine.json

  echo "== engine observatory: profiled smoke + trace validation =="
  # A profiled fig4 smoke must emit a Chrome trace-event file that
  # parses, is non-empty, and has only complete spans (DESIGN.md §10);
  # meshctl validate-trace is the checker users run by hand.
  MESHLAYER_OUT="$flight_out" MESHLAYER_SECS=2 MESHLAYER_WARMUP=1 \
    cargo run --offline --release -q -p meshlayer-bench --bin fig4_latency -- \
    --threads 1 --profile "$flight_out/ci_trace.json" 20 40
  cargo run --offline --release -q --bin meshctl -- validate-trace "$flight_out/ci_trace.json"

  echo "== engine observatory: profiling overhead ceiling =="
  # Paired 1-thread runs: profiled throughput must stay within 5% of
  # unprofiled (phase timers piggyback on existing clock reads).
  MESHLAYER_OUT="$flight_out" MESHLAYER_SECS=2 MESHLAYER_WARMUP=1 \
    cargo run --offline --release -q -p meshlayer-bench --bin bench_engine -- --overhead-check
fi

echo "ci: all checks passed"
